"""E-F4 / E-F5 — Figures 4 & 5: the Most Similar Facet Value Pair task.

Figure 4 reports the rank (1 = best of the 6 possible pairs) of each
user's chosen pair; Figure 5 the completion time.  The paper found *no*
significant quality difference (all 8 users solved the easy gill-color
task; on the harder task two TPFacet users landed on the pair that is
rank 2 under the task metric but rank 1 under Algorithm 2), and a large
time effect ("chi2(1)=12.04, p=0.0005, lowering it by about 6.00 +/-
1.23 minutes", ~4x).
"""

import numpy as np
import pytest

from repro.core import CADViewConfig
from repro.facets import FacetedEngine
from repro.study import TPFacetAgent, UserProfile, mushroom_task_suite

from conftest import print_user_table


def test_figure4_pair_ranks(study):
    print_user_table(
        "Figure 4: Most Similar Pair rank (1=best)",
        study.table("similar_pair", "quality"),
        fmt="{:.0f}",
    )
    eff = study.analyze("similar_pair", "quality")
    print(f"mixed model (paper: no significant difference): {eff}")
    # every answer is a top-2 pair on both interfaces
    for m in study.of("similar_pair"):
        assert m.quality <= 2.0

    # the easy task (T2a, gill colors) is solved by everyone — the
    # paper: "all the eight users got correct answer for this task"
    t2a = [m for m in study.of("similar_pair") if m.task_id == "T2a"]
    assert all(m.quality == 1.0 for m in t2a)


def test_figure5_times(study):
    print_user_table(
        "Figure 5: Most Similar Pair time (min)",
        study.table("similar_pair", "minutes"),
    )
    eff = study.analyze("similar_pair", "minutes")
    print(f"mixed model (paper: chi2(1)=12.04, p=0.0005, -6.00 min): {eff}")
    print(f"speedup: {study.speedup('similar_pair'):.2f}x (paper: ~4x)")
    assert eff.effect < 0 and eff.p_value < 0.01
    assert study.speedup("similar_pair") > 2.0


def test_bench_tpfacet_similarity_agent(benchmark, mushroom8124):
    engine = FacetedEngine(mushroom8124)
    task = mushroom_task_suite().similar_pair[0]
    user = UserProfile("U1", 1, speed=1.0, diligence=0.7)

    def run():
        agent = TPFacetAgent(
            engine, user, np.random.default_rng(0), CADViewConfig(seed=1)
        )
        return agent.do_similar_pair(task)

    out = benchmark(run)
    assert len(out.answer) == 2
