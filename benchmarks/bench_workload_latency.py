"""E-WORK — interactive latency over a realistic exploration workload.

The paper's Fig. 8 sweeps iid row subsets; real exploration states are
conjunctive facet selections with skewed result sizes.  Two workloads
run here:

* a synthetic one — the facet-click-biased generator of
  ``repro.study.workload`` produces conjunctive queries and an
  optimized CAD View is built per result; the p95 is what an
  interactive system has to keep under budget;
* the canned exploration session ``examples/session_nba.worklog.jsonl``
  replayed through the full statement path (parse -> analyze ->
  execute), reporting per-statement-kind percentiles — the numbers
  ``repro replay`` prints, made regression-gateable.
"""

import os

import numpy as np
import pytest

from repro import CADViewBuilder, CADViewConfig
from repro.core import DBExplorer
from repro.core.optimizer import recommended_config
from repro.dataset.generators import generate_usedcars
from repro.errors import CADViewError, EmptyResultError
from repro.obs import NO_WORKLOG, read_worklog, replay, work
from repro.study import random_conjunctive_queries

N_QUERIES = 25
BASE = CADViewConfig(compare_limit=5, iunits_k=3, seed=0)
SESSION_LOG = os.path.join(
    os.path.dirname(__file__), "..", "examples", "session_nba.worklog.jsonl"
)


def build_for(query, cars):
    """Build an optimized CAD View for one workload query, pivoting on
    the first attribute the query did NOT constrain."""
    constrained = set(query.predicate.attributes())
    pivot = next(
        (a for a in ("Make", "BodyType", "Drivetrain", "Color")
         if a not in constrained), "Make",
    )
    cfg = recommended_config(BASE, len(query.result))
    return CADViewBuilder(cfg).build(
        query.result, pivot, exclude=tuple(constrained)
    )


def test_workload_latency_distribution(cars40k, bench_emit):
    queries = random_conjunctive_queries(
        cars40k, N_QUERIES, target_selectivity=0.08, seed=12
    )
    latencies = []
    phase_sums = {"compare_attrs": 0.0, "iunits": 0.0, "others": 0.0}
    skipped = 0
    # seeded workload: the work counters are deterministic and land in
    # the payload as exact-gated integers
    with work.track() as counters:
        for q in queries:
            try:
                cad = build_for(q, cars40k)
            except (EmptyResultError, CADViewError):
                skipped += 1  # degenerate states (e.g. single-row results)
                continue
            latencies.append(cad.profile.total_s)
            phase_sums["compare_attrs"] += cad.profile.compare_attrs_s
            phase_sums["iunits"] += cad.profile.iunits_s
            phase_sums["others"] += cad.profile.others_s
    assert latencies, "workload produced no buildable states"
    lat = np.array(latencies) * 1e3
    print(f"\n== E-WORK: CAD View latency over {len(lat)} exploration "
          f"states ({skipped} skipped) ==")
    print(f"p50 {np.percentile(lat, 50):7.1f} ms")
    print(f"p95 {np.percentile(lat, 95):7.1f} ms")
    print(f"max {lat.max():7.1f} ms")
    bench_emit("workload_latency", {
        "n_states": len(latencies),
        "skipped": skipped,
        "p50_ms": float(np.percentile(lat, 50)),
        "p95_ms": float(np.percentile(lat, 95)),
        "max_ms": float(lat.max()),
        "phase_totals_ms": {
            phase: total * 1e3 for phase, total in phase_sums.items()
        },
        "latencies_ms": [float(v) for v in lat],
        "work": {"totals": counters.as_dict()},
    })
    # the interactivity budget the paper targets (sub-second, Sec. 3.1.2)
    assert np.percentile(lat, 95) < 1_000


def test_canned_session_replay(bench_emit):
    """Replay the committed exploration session; gate its percentiles."""
    records = read_worklog(SESSION_LOG)
    session = next(r for r in records if r.get("kind") == "session")
    table = generate_usedcars(session["rows"], seed=session["seed"])
    # NO_WORKLOG: a REPRO_WORKLOG in the environment must not make the
    # bench append the replayed statements to a live log
    dbx = DBExplorer(
        CADViewConfig(seed=session["seed"]), worklog=NO_WORKLOG
    )
    dbx.register("data", table)
    report = replay(records, dbx)
    n_stmts = sum(1 for r in records if r.get("kind") == "statement")
    assert report.statements == n_stmts
    assert report.skipped == 0
    # the canned session deliberately contains one analyzer-rejected
    # statement — replay measures it instead of dying on it
    assert report.statuses.get("analysis_error") == 1
    assert report.statuses.get("ok") == n_stmts - 1
    print("\n" + report.render())
    bench_emit("session_replay", report.as_dict())
    # interactivity: even the heaviest statement kind stays sub-second
    assert report.by_kind["create_cadview"]["p95_ms"] < 1_000


def test_bench_median_workload_state(benchmark, cars40k):
    queries = random_conjunctive_queries(
        cars40k, 10, target_selectivity=0.08, seed=13
    )
    # pick the median-sized result as the representative state
    queries.sort(key=lambda q: len(q.result))
    query = queries[len(queries) // 2]
    cad = benchmark(lambda: build_for(query, cars40k))
    assert cad.profile.total_s > 0
