"""E-REP — replication: do the study's effects survive fresh seeds?

The paper ran one study; a simulation can re-run it.  Three replications
with different RNG seeds (fresh users, fresh agent randomness) must
agree on every headline *direction*:

* TPFacet is faster on all three tasks;
* TPFacet's classifier F1 is at least as good, with no direction flip;
* TPFacet's retrieval error is lower.

A nonparametric Wilcoxon signed-rank check on the paired per-user times
backs up the parametric mixed model in every replication.
"""

import numpy as np
import pytest

from repro.stats import wilcoxon_signed_rank
from repro.study import run_study

SEEDS = (2016, 2024, 7)


@pytest.fixture(scope="module")
def replications(mushroom8124):
    return {seed: run_study(mushroom8124, seed=seed) for seed in SEEDS}


def test_time_direction_replicates(replications):
    print("\n== E-REP: time effects across seeds ==")
    alternative_effects = []
    for seed, results in replications.items():
        for task_type in ("classifier", "similar_pair", "alternative"):
            eff = results.analyze(task_type, "minutes")
            print(f"seed {seed} {task_type:>13}: effect {eff.effect:+.2f} "
                  f"min (p={eff.p_value:.3g})")
            if task_type == "alternative":
                # the paper's task-3 time effect was only borderline
                # (p=0.108); with fresh subjects it can vanish — but it
                # must never flip *significantly* in Solr's favour
                alternative_effects.append(eff)
                assert eff.effect < 0 or eff.p_value > 0.1, (
                    seed, task_type,
                )
            else:
                # the two strong effects must replicate in direction
                assert eff.effect < 0, (seed, task_type)
    # and the majority of replications keep the paper's direction
    negative = sum(1 for e in alternative_effects if e.effect < 0)
    assert negative >= len(alternative_effects) / 2


def test_quality_directions_replicate(replications):
    for seed, results in replications.items():
        f1 = results.analyze("classifier", "quality")
        err = results.analyze("alternative", "quality")
        assert f1.effect > -0.01, (seed, "classifier F1 flipped")
        assert err.effect < 0, (seed, "retrieval error flipped")


def test_wilcoxon_backs_mixed_model(replications):
    for seed, results in replications.items():
        for task_type in ("classifier", "similar_pair"):
            table = results.table(task_type, "minutes")
            users = sorted(table)
            solr = [table[u]["Solr"] for u in users]
            tp = [table[u]["TPFacet"] for u in users]
            res = wilcoxon_signed_rank(solr, tp)
            assert res.p_value < 0.05, (seed, task_type)
            assert np.median(np.array(solr) - np.array(tp)) > 0


def test_bench_one_study_run(benchmark, mushroom8124):
    results = benchmark.pedantic(
        lambda: run_study(mushroom8124, seed=99), rounds=1, iterations=1
    )
    assert len(results.measurements) == 48
