"""E-CAT — CAD View vs decision-tree result categorization ([4]/[6]).

The related-work claim: categorization trees "depend on the data and
are independent of the user's interest", so their summary of a result
set is the *same* whatever the user wants to compare, while the CAD
View re-organizes around the chosen Pivot Attribute.  This bench makes
that concrete:

* the category tree built over Mary's SUV result set rarely spends its
  budget contrasting Makes (its splits chase global entropy);
* the CAD View of the same result, pivoted on Make, separates the five
  makes' rows (every make gets its own labeled IUnits), and pivoting on
  a different attribute re-organizes the summary, which the tree cannot.
"""

import numpy as np
import pytest

from repro import CADViewBuilder, CADViewConfig
from repro.core import CategoryTree
from repro.discretize import Discretizer
from bench_fig8_worst_case import MAKES, result_of_size


@pytest.fixture(scope="module")
def result(cars40k):
    return result_of_size(cars40k, 15_000, np.random.default_rng(10))


def test_category_tree_is_user_independent(result):
    view = Discretizer(nbins=4).fit(result)
    tree = CategoryTree.fit(view, max_depth=2, min_leaf=100)
    print("\n== E-CAT: category tree over the SUV result ==")
    print(tree.describe(max_lines=25))
    print(f"leaves={len(tree.leaves())} "
          f"navigation_cost={tree.navigation_cost():.1f}")
    # the tree exists and is non-trivial
    assert len(tree.leaves()) >= 3
    # but it is the same object whatever the user's pivot is — there is
    # no pivot input at all; nothing to assert beyond the API shape.


def test_cadview_reorganizes_by_pivot(result):
    cfg = CADViewConfig(compare_limit=5, iunits_k=3, seed=0)
    by_make = CADViewBuilder(cfg).build(
        result, "Make", pivot_values=list(MAKES)
    )
    by_drive = CADViewBuilder(cfg).build(result, "Drivetrain")
    print("\nCompare Attributes when pivoting on Make:      "
          f"{by_make.compare_attributes}")
    print(f"Compare Attributes when pivoting on Drivetrain: "
          f"{by_drive.compare_attributes}")
    # different pivots reorganize the summary
    assert by_make.pivot_values != by_drive.pivot_values
    assert set(by_make.compare_attributes) != set(by_drive.compare_attributes)


def test_bench_category_tree(benchmark, result):
    view = Discretizer(nbins=4).fit(result)
    tree = benchmark(
        lambda: CategoryTree.fit(view, max_depth=3, min_leaf=100)
    )
    assert tree.root.size == len(result)
