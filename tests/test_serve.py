"""Unit tests for the concurrent serving core (repro.serve).

Covers the breaker state machine transition-by-transition with an
injected clock, the executor's admission/rejection/cancellation/retry
paths, and — as a hypothesis property — the terminal-outcome contract:
every admitted statement ends in exactly one of the four outcomes and
leaves a workload-log record behind.
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import DBExplorer
from repro.dataset.generators import generate_usedcars
from repro.errors import (
    OverloadedError,
    QueryCancelledError,
    ServeError,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.worklog import NO_WORKLOG, WorkLogWriter, read_worklog
from repro.robustness import FaultInjector
from repro.serve import (
    BreakerConfig,
    BreakerState,
    CircuitBreaker,
    ServeConfig,
    SessionExecutor,
)
from repro.serve.breaker import BreakerBoard
from repro.serve.executor import OUTCOMES


@pytest.fixture(scope="module")
def cars():
    return generate_usedcars(1_000, seed=7)


def _explorer(cars, worklog=None, faults=None):
    dbx = DBExplorer(worklog=worklog or NO_WORKLOG, faults=faults)
    dbx.register("data", cars)
    return dbx


class FakeClock:
    """An injectable monotonic clock for breaker/watchdog tests."""

    def __init__(self, t: float = 0.0):
        self.t = t

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


# -- configuration validation ----------------------------------------------


class TestServeConfig:
    def test_defaults_are_valid(self):
        config = ServeConfig()
        assert config.workers >= 1
        assert config.queue_limit >= 0

    @pytest.mark.parametrize("kwargs", [
        {"workers": 0},
        {"queue_limit": -1},
        {"deadline_s": 0.0},
        {"deadline_s": -1.0},
        {"max_retries": -1},
        {"watchdog_interval_s": 0.0},
    ])
    def test_rejects_bad_knobs(self, kwargs):
        with pytest.raises(ValueError):
            ServeConfig(**kwargs)

    def test_breaker_config_validation(self):
        with pytest.raises(ValueError):
            BreakerConfig(trip_after=0)
        with pytest.raises(ValueError):
            BreakerConfig(cooldown_s=0.0)
        with pytest.raises(ValueError):
            BreakerConfig(probe_successes=0)


# -- the breaker state machine, transition by transition -------------------


class TestCircuitBreaker:
    def _breaker(self, **kwargs):
        clock = FakeClock()
        config = BreakerConfig(
            trip_after=kwargs.pop("trip_after", 3),
            cooldown_s=kwargs.pop("cooldown_s", 5.0),
            probe_successes=kwargs.pop("probe_successes", 1),
        )
        brk = CircuitBreaker(
            "data", config, now=clock, metrics=MetricsRegistry()
        )
        return brk, clock

    def test_starts_closed_and_allows(self):
        brk, _ = self._breaker()
        assert brk.state is BreakerState.CLOSED
        assert brk.allow() == (True, False)

    def test_failures_below_threshold_stay_closed(self):
        brk, _ = self._breaker(trip_after=3)
        brk.on_failure()
        brk.on_failure()
        assert brk.state is BreakerState.CLOSED

    def test_success_resets_the_failure_count(self):
        brk, _ = self._breaker(trip_after=3)
        brk.on_failure()
        brk.on_failure()
        brk.on_success()  # consecutive-failure streak broken
        brk.on_failure()
        brk.on_failure()
        assert brk.state is BreakerState.CLOSED

    def test_closed_to_open_on_consecutive_failures(self):
        brk, _ = self._breaker(trip_after=3)
        for _ in range(3):
            brk.on_failure()
        assert brk.state is BreakerState.OPEN
        assert brk.allow() == (False, False)

    def test_open_stays_open_before_cooldown(self):
        brk, clock = self._breaker(trip_after=1, cooldown_s=5.0)
        brk.on_failure()
        clock.advance(4.9)
        assert brk.state is BreakerState.OPEN
        assert brk.allow() == (False, False)

    def test_open_to_half_open_after_cooldown(self):
        brk, clock = self._breaker(trip_after=1, cooldown_s=5.0)
        brk.on_failure()
        clock.advance(5.0)
        assert brk.state is BreakerState.HALF_OPEN

    def test_half_open_allows_exactly_one_probe(self):
        brk, clock = self._breaker(trip_after=1, cooldown_s=1.0)
        brk.on_failure()
        clock.advance(1.0)
        assert brk.allow() == (True, True)    # the probe
        assert brk.allow() == (False, False)  # everyone else waits

    def test_probe_success_closes(self):
        brk, clock = self._breaker(trip_after=1, cooldown_s=1.0)
        brk.on_failure()
        clock.advance(1.0)
        _, probe = brk.allow()
        assert probe
        brk.on_success(probe=True)
        assert brk.state is BreakerState.CLOSED
        assert brk.allow() == (True, False)

    def test_probe_failure_reopens_with_fresh_cooldown(self):
        brk, clock = self._breaker(trip_after=1, cooldown_s=1.0)
        brk.on_failure()
        clock.advance(1.0)
        _, probe = brk.allow()
        assert probe
        brk.on_failure(probe=True)
        assert brk.state is BreakerState.OPEN
        clock.advance(0.5)
        assert brk.state is BreakerState.OPEN   # fresh cooldown running
        clock.advance(0.5)
        assert brk.state is BreakerState.HALF_OPEN  # and expiring again

    def test_cancelled_probe_stays_half_open(self):
        """Regression: a probe cancelled for health-unrelated reasons
        (drain, client disconnect) must not latch the breaker open.

        Before the fix this raced: the half-open probe got cancelled,
        the executor routed it to ``on_failure``, and the breaker
        re-opened with a fresh cooldown — a perfectly healthy dataset
        could stay short-circuited indefinitely under periodic drains.
        An inconclusive probe frees the slot and stays HALF_OPEN, so
        the next arrival becomes the new probe.
        """
        brk, clock = self._breaker(trip_after=1, cooldown_s=1.0)
        brk.on_failure()
        clock.advance(1.0)
        _, probe = brk.allow()
        assert probe
        brk.on_cancelled(probe=True)
        assert brk.state is BreakerState.HALF_OPEN
        # the slot is free: the very next arrival probes, and its
        # success closes the breaker without waiting out a cooldown
        assert brk.allow() == (True, True)
        brk.on_success(probe=True)
        assert brk.state is BreakerState.CLOSED

    def test_cancelled_probe_never_starts_a_cooldown(self):
        brk, clock = self._breaker(trip_after=1, cooldown_s=10.0)
        brk.on_failure()
        clock.advance(10.0)
        _, probe = brk.allow()
        assert probe
        brk.on_cancelled(probe=True)
        # no clock advance needed: had on_failure run instead, the
        # breaker would be OPEN for another 10s from *now*
        assert brk.allow() == (True, True)

    def test_cancelled_outside_half_open_is_inert(self):
        brk, _ = self._breaker(trip_after=3)
        brk.on_failure()
        brk.on_cancelled()
        brk.on_failure()
        # cancellation neither adds a failure nor resets the streak
        assert brk.state is BreakerState.CLOSED
        brk.on_failure()
        assert brk.state is BreakerState.OPEN

    def test_reclose_then_trip_again(self):
        brk, clock = self._breaker(trip_after=2, cooldown_s=1.0)
        brk.on_failure()
        brk.on_failure()
        assert brk.state is BreakerState.OPEN
        clock.advance(1.0)
        brk.allow()
        brk.on_success(probe=True)
        assert brk.state is BreakerState.CLOSED
        # the failure counter restarted from zero after the re-close
        brk.on_failure()
        assert brk.state is BreakerState.CLOSED
        brk.on_failure()
        assert brk.state is BreakerState.OPEN

    def test_transitions_are_counted(self):
        clock = FakeClock()
        metrics = MetricsRegistry()
        brk = CircuitBreaker(
            "data", BreakerConfig(trip_after=1, cooldown_s=1.0),
            now=clock, metrics=metrics,
        )
        brk.on_failure()
        clock.advance(1.0)
        brk.allow()
        brk.on_success(probe=True)
        snap = metrics.snapshot()
        assert snap["counters"]["serve.breaker.data.closed_to_open"] == 1
        assert snap["counters"]["serve.breaker.data.open_to_half_open"] == 1
        assert snap["counters"]["serve.breaker.data.half_open_to_closed"] == 1

    def test_board_get_or_create_and_states(self):
        board = BreakerBoard(
            BreakerConfig(trip_after=1), now=FakeClock(),
            metrics=MetricsRegistry(),
        )
        a = board.breaker("data")
        assert board.breaker("data") is a
        board.breaker("other").on_failure()
        assert board.states() == {"data": "closed", "other": "open"}


# -- the executor -----------------------------------------------------------


class TestSessionExecutor:
    def test_ok_statement(self, cars):
        dbx = _explorer(cars)
        with SessionExecutor(dbx, ServeConfig(workers=2)) as ex:
            ticket = ex.run("SELECT Make, Price FROM data LIMIT 5")
        assert ticket.done
        assert ticket.outcome == "ok"
        assert ticket.status == "ok"
        assert ticket.error is None
        assert ticket.result is not None
        assert ticket.kind == "select"

    def test_parse_error_fails_on_the_caller_thread(self, cars):
        dbx = _explorer(cars)
        with SessionExecutor(dbx, ServeConfig(workers=1)) as ex:
            ticket = ex.submit("SELEC nonsense FORM data")
            # the analyzer gate finished the ticket synchronously at
            # submit: no pool thread was consumed
            assert ticket.done
        assert ticket.outcome == "failed"
        assert ticket.status == "parse_error"

    def test_analysis_error_fails_at_the_gate(self, cars):
        dbx = _explorer(cars)
        with SessionExecutor(dbx, ServeConfig(workers=1)) as ex:
            ticket = ex.submit(
                "SELECT Price FROM data WHERE Price > 9000 AND Price < 5000"
            )
            assert ticket.done
        assert ticket.outcome == "failed"
        assert ticket.status == "analysis_error"

    def test_full_queue_rejects_with_retry_after(self, cars):
        dbx = _explorer(cars)
        metrics = MetricsRegistry()
        config = ServeConfig(workers=1, queue_limit=0, breaker=None)
        stall = FaultInjector.parse("serve.slow_worker=sleep:0.3*1")
        with SessionExecutor(dbx, config, metrics=metrics) as ex:
            first = ex.submit(
                "SELECT Make FROM data LIMIT 1", faults=stall
            )
            with pytest.raises(OverloadedError) as excinfo:
                ex.submit("SELECT Price FROM data LIMIT 1")
            first.wait(5.0)
        assert excinfo.value.retry_after_s > 0
        assert first.outcome in ("ok", "degraded")
        snap = metrics.snapshot()
        assert snap["counters"]["serve.rejected"] == 1

    def test_queue_full_fault_site_forces_rejection(self, cars):
        dbx = _explorer(cars)
        with SessionExecutor(dbx, ServeConfig(workers=2)) as ex:
            with pytest.raises(OverloadedError):
                ex.submit(
                    "SELECT Make FROM data LIMIT 1",
                    faults=FaultInjector.parse("serve.queue_full=crash*1"),
                )

    def test_transient_faults_are_retried(self, cars):
        dbx = _explorer(cars)
        config = ServeConfig(
            workers=1, max_retries=2, backoff_base_s=0.001,
            backoff_cap_s=0.002,
        )
        crashes = FaultInjector.parse("serve.slow_worker=crash*2")
        with SessionExecutor(dbx, config) as ex:
            ticket = ex.submit(
                "SELECT Make FROM data LIMIT 1", faults=crashes
            )
            ticket.wait(5.0)
        assert ticket.outcome == "ok"
        assert ticket.attempts == 3  # two crashes absorbed, then success

    def test_retries_exhausted_fail_the_ticket(self, cars):
        dbx = _explorer(cars)
        config = ServeConfig(
            workers=1, max_retries=1, backoff_base_s=0.001,
            backoff_cap_s=0.002,
        )
        crashes = FaultInjector.parse("serve.slow_worker=crash*5")
        with SessionExecutor(dbx, config) as ex:
            ticket = ex.submit(
                "SELECT Make FROM data LIMIT 1", faults=crashes
            )
            ticket.wait(5.0)
        assert ticket.outcome == "failed"
        assert ticket.attempts == 2
        assert isinstance(ticket.error, RuntimeError)

    def test_watchdog_cancels_past_the_deadline(self, cars):
        dbx = _explorer(cars)
        metrics = MetricsRegistry()
        config = ServeConfig(
            workers=1, deadline_s=0.05, watchdog_interval_s=0.005,
            breaker=None,
        )
        stall = FaultInjector.parse("serve.slow_worker=sleep:0.3*1")
        with SessionExecutor(dbx, config, metrics=metrics) as ex:
            ticket = ex.submit(
                "SELECT Make FROM data LIMIT 1", faults=stall
            )
            ticket.wait(5.0)
        assert ticket.outcome == "failed"
        assert ticket.status == "cancelled"
        assert isinstance(ticket.error, QueryCancelledError)
        snap = metrics.snapshot()
        assert snap["counters"]["serve.deadline_tripped"] >= 1

    def test_open_breaker_short_circuits_builds(self, cars):
        dbx = _explorer(cars)
        config = ServeConfig(
            workers=1, max_retries=0,
            breaker=BreakerConfig(trip_after=1, cooldown_s=60.0),
        )
        create = (
            "CREATE CADVIEW v{} AS SET pivot = Make "
            "SELECT Price, Mileage FROM data WHERE BodyType = SUV"
        )
        with SessionExecutor(dbx, config) as ex:
            # crash clustering for *every* pivot value: per-pivot
            # isolation drops them all and the build fails hard
            failed = ex.submit(
                create.format(0),
                faults=FaultInjector.parse("cluster=crash*"),
            )
            failed.wait(10.0)
            assert failed.outcome == "failed"
            assert failed.status == "build_failed"
            assert ex.breaker_states() == {"data": "open"}
            # while open, builds run under open_budget — ladder mode
            ticket = ex.submit(create.format(1))
            ticket.wait(10.0)
        assert ticket.short_circuited
        assert ticket.outcome in ("degraded", "failed")

    def test_submit_after_close_raises(self, cars):
        dbx = _explorer(cars)
        ex = SessionExecutor(dbx, ServeConfig(workers=1))
        ex.close()
        with pytest.raises(ServeError):
            ex.submit("SELECT Make FROM data LIMIT 1")

    def test_sessions_are_isolated(self, cars):
        dbx = _explorer(cars)
        with SessionExecutor(dbx, ServeConfig(workers=2)) as ex:
            a = ex.run("SELECT Make FROM data LIMIT 1", session="alice")
            b = ex.run("SELEC nonsense", session="bob")
        assert a.outcome == "ok"
        assert b.outcome == "failed"
        # bob's parse error never touched alice's session state
        assert dbx.session("alice").statements == 1
        assert dbx.session("bob").statements == 0


# -- the no-silent-drops worklog contract -----------------------------------


STATEMENT_POOL = (
    "SELECT Make, Price FROM data LIMIT 5",
    "DESCRIBE data",
    "SHOW CADVIEWS",
    "SELECT Price FROM data WHERE Price > 9000 AND Price < 5000",
    "SELEC nonsense FORM data",
)


class TestOutcomeContract:
    def test_every_path_leaves_a_worklog_record(self, cars, tmp_path):
        log = tmp_path / "serve.worklog.jsonl"
        with WorkLogWriter(str(log)) as worklog:
            dbx = _explorer(cars, worklog=worklog)
            config = ServeConfig(workers=1, queue_limit=0, breaker=None)
            stall = FaultInjector.parse("serve.slow_worker=sleep:0.2*1")
            with SessionExecutor(dbx, config) as ex:
                tickets = [
                    ex.submit("SELECT Make FROM data LIMIT 1", faults=stall)
                ]
                submitted = 1
                with pytest.raises(OverloadedError):
                    ex.submit("SELECT Price FROM data LIMIT 1")
                submitted += 1
                tickets[0].wait(5.0)
                tickets.append(ex.submit("SELEC nonsense"))
                submitted += 1
                tickets.append(ex.submit("DESCRIBE data"))
                submitted += 1
                for t in tickets:
                    t.wait(5.0)
        records = [
            r for r in read_worklog(str(log)) if r["kind"] == "statement"
        ]
        assert len(records) == submitted
        statuses = sorted(r["status"] for r in records)
        assert statuses == ["ok", "ok", "parse_error", "rejected"]

    @settings(max_examples=10, deadline=None)
    @given(st.lists(
        st.sampled_from(STATEMENT_POOL), min_size=1, max_size=6
    ))
    def test_every_admitted_statement_ends_in_one_outcome(self, batch):
        # hypothesis shares the module fixture poorly across examples,
        # so the table/explorer are rebuilt per example (small on
        # purpose) with a throwaway worklog file
        cars = generate_usedcars(300, seed=7)
        with tempfile.TemporaryDirectory() as tmp:
            log = Path(tmp) / "prop.worklog.jsonl"
            with WorkLogWriter(str(log)) as worklog:
                dbx = _explorer(cars, worklog=worklog)
                config = ServeConfig(
                    workers=2, queue_limit=len(batch) + 1, breaker=None
                )
                with SessionExecutor(dbx, config) as ex:
                    tickets = [ex.submit(sql) for sql in batch]
                    for ticket in tickets:
                        assert ticket.wait(10.0)
            for ticket in tickets:
                # exactly one terminal outcome from the fixed vocabulary
                assert ticket.done
                assert OUTCOMES.count(ticket.outcome) == 1
                assert (ticket.error is None) or (ticket.result is None)
            records = [
                r for r in read_worklog(str(log))
                if r["kind"] == "statement"
            ]
            assert len(records) == len(batch)
