"""Unit tests for the Discretizer / DiscretizedView."""

import numpy as np
import pytest

from repro.discretize import Discretizer
from repro.errors import QueryError
from repro.query import Eq, QueryEngine


@pytest.fixture()
def view(toy_table):
    return Discretizer(nbins=3).fit(toy_table)


class TestDiscretizer:
    def test_unknown_strategy(self):
        with pytest.raises(QueryError):
            Discretizer(strategy="bogus")

    def test_categorical_passthrough(self, view):
        assert set(view.labels("city")) == {"Paris", "Lyon", "Nice"}

    def test_numeric_binned(self, view):
        assert view.is_binned("price")
        assert view.ncodes("price") >= 2

    def test_small_ordinal_paired(self, view):
        # stars 1..5 -> consecutive pairs, top pair ends at max
        labels = view.labels("stars")
        assert labels[-1] == "4-5"

    def test_missing_becomes_minus_one(self, view, toy_table):
        assert view.codes("city")[7] == -1
        assert view.codes("price")[6] == -1

    def test_subset_of_names(self, toy_table):
        v = Discretizer().fit(toy_table, names=["city"])
        assert v.attribute_names == ("city",)
        with pytest.raises(QueryError):
            v.codes("price")

    def test_context_dependence(self, cars):
        """Discretizing a filtered result gives narrower ranges — the
        paper's 'Year 2011-2012 because low mileage' effect."""
        full = Discretizer(nbins=4).fit(cars)
        cheap = QueryEngine.select(cars, Eq("BodyType", "SUV"))
        cheap = cheap.filter(cheap["Mileage"].numbers <= 15_000)
        ctx = Discretizer(nbins=4).fit(cheap)
        full_years = full.labels("Year")
        ctx_years = ctx.labels("Year")
        assert len(ctx_years) <= len(full_years)

    def test_nbins_override(self, toy_table):
        v = Discretizer(nbins=3, nbins_overrides={"price": 2}).fit(toy_table)
        assert v.ncodes("price") <= 4  # snapped width may add a bin


class TestDiscretizedView:
    def test_label_roundtrip(self, view):
        for name in view.attribute_names:
            for code, label in enumerate(view.labels(name)):
                assert view.code_of(name, label) == code
                assert view.label_of(name, code) == label

    def test_label_of_missing(self, view):
        assert view.label_of("city", -1) == "?"

    def test_code_of_unknown(self, view):
        assert view.code_of("city", "Atlantis") == -1

    def test_predicate_roundtrip_categorical(self, view, toy_table):
        p = view.predicate_for("city", view.code_of("city", "Lyon"))
        assert np.array_equal(
            p.mask(toy_table), view.codes("city") == view.code_of("city", "Lyon")
        )

    def test_predicate_roundtrip_binned(self, view, toy_table):
        for code in range(view.ncodes("price")):
            p = view.predicate_for("price", code)
            assert np.array_equal(
                p.mask(toy_table), view.codes("price") == code
            ), code

    def test_bins_on_categorical_raises(self, view):
        with pytest.raises(QueryError):
            view.bins("city")

    def test_matrix_shape(self, view, toy_table):
        m = view.matrix(["city", "price"])
        assert m.shape == (len(toy_table), 2)
        assert m.dtype == np.int32

    def test_restrict(self, view):
        mask = view.codes("city") == view.code_of("city", "Paris")
        sub = view.restrict(mask)
        assert len(sub) == 3
        assert sub.labels("city") == view.labels("city")  # shared labels
        assert set(sub.value_counts("city")) == {"Paris"}

    def test_value_counts_exclude_missing(self, view):
        counts = view.value_counts("city")
        assert sum(counts.values()) == 7  # one missing city

    def test_unknown_attribute(self, view):
        with pytest.raises(QueryError):
            view.codes("bogus")

    def test_dense_domain_after_filter(self, toy_table):
        """Categorical codes re-map densely to the values present."""
        paris_only = toy_table.filter(
            np.array([r["city"] == "Paris" for r in toy_table.iter_rows()])
        )
        v = Discretizer().fit(paris_only)
        assert v.labels("city") == ("Paris",)
        assert v.codes("city").max() == 0
