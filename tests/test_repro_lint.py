"""Tests for the repro-lint framework and every RL rule.

Each rule gets at least one failing fixture (the invariant violated)
and one passing fixture (the sanctioned idiom); plus the suppression
syntax, the reporters, the CLI entry point, and the meta-check that the
shipped ``src/repro`` tree is lint-clean.
"""

from __future__ import annotations

import json
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from tools.repro_lint import lint_paths, render_json, render_text
from tools.repro_lint.framework import ModuleInfo, Rule, all_rules
from tools.repro_lint.__main__ import main as lint_main

REPO = Path(__file__).resolve().parent.parent


def lint_source(
    source: str, path: str = "src/repro/sample.py", select=None
):
    """Lint one in-memory module written to a real temp-free path name."""
    import ast

    text = textwrap.dedent(source)
    module = ModuleInfo(path, text, ast.parse(text))
    findings = []
    suppressed = 0
    for rule in all_rules():
        if select and rule.code not in select:
            continue
        for finding in rule.check(module):
            if module.is_suppressed(finding):
                suppressed += 1
            else:
                findings.append(finding)
    return findings, suppressed


class TestRL001UnseededRandomness:
    def test_flags_unseeded_sources(self):
        findings, _ = lint_source("""
            import random
            r = random.Random()
            x = random.random()
            rng = default_rng()
        """)
        assert [f.rule for f in findings] == ["RL001"] * 3

    def test_seeded_sources_pass(self):
        findings, _ = lint_source("""
            import random
            r = random.Random(7)
            rng = default_rng(13)
            rng2 = np.random.default_rng(seed)
        """)
        assert findings == []

    def test_tests_are_exempt(self):
        findings, _ = lint_source(
            "import random\nr = random.Random()\n",
            path="tests/test_x.py",
        )
        assert findings == []


HOT = "src/repro/clustering/sample.py"


class TestRL002HotLoopCheckpoint:
    def test_flags_loop_without_checkpoint(self):
        findings, _ = lint_source("""
            def fit(X, checkpoint=None):
                while True:
                    step()
        """, path=HOT)
        assert [f.rule for f in findings] == ["RL002"]
        assert "fit" in findings[0].message

    def test_direct_call_passes(self):
        findings, _ = lint_source("""
            def fit(X, checkpoint=None):
                for row in X:
                    if checkpoint is not None:
                        checkpoint()
                    step(row)
        """, path=HOT)
        assert findings == []

    def test_forwarding_to_callee_passes(self):
        findings, _ = lint_source("""
            def outer(X, checkpoint=None):
                for block in X:
                    inner(block, checkpoint)
        """, path=HOT)
        assert findings == []

    def test_functions_without_checkpoint_param_are_out_of_scope(self):
        findings, _ = lint_source("""
            def helper(X):
                for row in X:
                    step(row)
        """, path=HOT)
        assert findings == []

    def test_cold_modules_are_out_of_scope(self):
        findings, _ = lint_source("""
            def fit(X, checkpoint=None):
                while True:
                    step()
        """, path="src/repro/core/sample.py")
        assert findings == []

    def test_only_outermost_loops_count(self):
        findings, _ = lint_source("""
            def fit(X, checkpoint=None):
                for row in X:
                    checkpoint()
                    for cell in row:
                        step(cell)
        """, path=HOT)
        assert findings == []


OBS = "src/repro/obs/sample.py"


class TestRL003ObsLockDiscipline:
    def test_flags_unlocked_mutation(self):
        findings, _ = lint_source("""
            class Counter:
                def __init__(self):
                    self._value = 0
                    self._lock = threading.Lock()

                def inc(self):
                    self._value += 1
        """, path=OBS)
        assert [f.rule for f in findings] == ["RL003"]
        assert "_value" in findings[0].message

    def test_locked_mutation_passes(self):
        findings, _ = lint_source("""
            class Counter:
                def __init__(self):
                    self._value = 0
                    self._lock = threading.Lock()

                def inc(self):
                    with self._lock:
                        self._value += 1
        """, path=OBS)
        assert findings == []

    def test_lockless_classes_are_out_of_scope(self):
        findings, _ = lint_source("""
            class Plain:
                def set(self, x):
                    self._x = x
        """, path=OBS)
        assert findings == []

    def test_outside_obs_is_out_of_scope(self):
        findings, _ = lint_source("""
            class Counter:
                def __init__(self):
                    self._lock = threading.Lock()

                def inc(self):
                    self._value = 1
        """, path="src/repro/core/sample.py")
        assert findings == []


class TestRL004SwallowedException:
    def test_flags_silent_blanket_handler(self):
        findings, _ = lint_source("""
            try:
                work()
            except Exception:
                pass
        """)
        assert [f.rule for f in findings] == ["RL004"]

    def test_flags_bare_except(self):
        findings, _ = lint_source("""
            try:
                work()
            except:
                result = None
        """)
        assert [f.rule for f in findings] == ["RL004"]

    def test_reraise_passes(self):
        findings, _ = lint_source("""
            try:
                work()
            except Exception:
                cleanup()
                raise
        """)
        assert findings == []

    def test_fault_report_passes(self):
        findings, _ = lint_source("""
            try:
                work()
            except Exception as exc:
                report.record_incident("phase", None, exc, "dropped")
        """)
        assert findings == []

    def test_narrow_handler_is_out_of_scope(self):
        findings, _ = lint_source("""
            try:
                work()
            except ValueError:
                pass
        """)
        assert findings == []


class TestRL005DanglingSpan:
    def test_flags_span_without_with(self):
        findings, _ = lint_source("""
            span = tracer.span("phase", rows=10)
            work()
        """)
        assert [f.rule for f in findings] == ["RL005"]

    def test_with_block_passes(self):
        findings, _ = lint_source("""
            with tracer.span("phase", rows=10):
                work()
        """)
        assert findings == []

    def test_enter_context_passes(self):
        findings, _ = lint_source("""
            span = stack.enter_context(tracer.span("phase"))
        """)
        assert findings == []


OBS = "src/repro/obs/sample.py"


class TestRL006WorklogLockDiscipline:
    def test_flags_unlocked_fh_call(self):
        findings, _ = lint_source("""
            class Writer:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._fh = open("log", "a")

                def log(self, line):
                    self._fh.write(line)
                    self._fh.flush()
        """, path=OBS, select={"RL006"})
        assert [f.rule for f in findings] == ["RL006", "RL006"]
        assert "write" in findings[0].message

    def test_locked_fh_call_passes(self):
        findings, _ = lint_source("""
            class Writer:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._fh = open("log", "a")

                def log(self, line):
                    with self._lock:
                        if self._fh.tell() > 100:
                            self._rotate()
                        self._fh.write(line)
                        self._fh.flush()
        """, path=OBS, select={"RL006"})
        assert findings == []

    def test_init_is_exempt(self):
        findings, _ = lint_source("""
            class Writer:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._fh = open("log", "a")
                    self._fh.write("header")
        """, path=OBS, select={"RL006"})
        assert findings == []

    def test_classes_without_fh_are_out_of_scope(self):
        findings, _ = lint_source("""
            class Counter:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._value = 0

                def items(self):
                    return self._snapshots.items()
        """, path=OBS, select={"RL006"})
        assert findings == []

    def test_outside_obs_is_out_of_scope(self):
        findings, _ = lint_source("""
            class Writer:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._fh = open("log", "a")

                def log(self, line):
                    self._fh.write(line)
        """, path="src/repro/core/sample.py", select={"RL006"})
        assert findings == []

    def test_helper_with_justified_suppression(self):
        findings, suppressed = lint_source("""
            class Writer:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._fh = open("log", "a")

                def _rotate(self):
                    # lock held by the caller
                    # repro-lint: ignore[RL006]
                    self._fh.close()
        """, path=OBS, select={"RL006"})
        assert findings == []
        assert suppressed == 1


SERVE = "src/repro/serve/sample.py"


class TestRL007ServeLockDiscipline:
    def test_flags_unlocked_mutation(self):
        findings, _ = lint_source("""
            class Executor:
                def __init__(self):
                    self._queued = 0
                    self._lock = threading.Lock()

                def admit(self):
                    self._queued += 1
        """, path=SERVE, select={"RL007"})
        assert [f.rule for f in findings] == ["RL007"]
        assert "_queued" in findings[0].message

    def test_locked_mutation_passes(self):
        findings, _ = lint_source("""
            class Executor:
                def __init__(self):
                    self._queued = 0
                    self._lock = threading.Lock()

                def admit(self):
                    with self._lock:
                        self._queued += 1
        """, path=SERVE, select={"RL007"})
        assert findings == []

    def test_snapshot_swap_under_lock_passes(self):
        # the registry's copy-on-write idiom: copy, mutate the copy,
        # swap the reference — all inside the lock
        findings, _ = lint_source("""
            class Registry:
                def __init__(self):
                    self._views = {}
                    self._lock = threading.Lock()

                def set(self, name, view):
                    with self._lock:
                        views = dict(self._views)
                        views[name] = view
                        self._views = views
        """, path=SERVE, select={"RL007"})
        assert findings == []

    def test_lockless_classes_are_out_of_scope(self):
        findings, _ = lint_source("""
            class Ticket:
                def finish(self, outcome):
                    self._outcome = outcome
        """, path=SERVE, select={"RL007"})
        assert findings == []

    def test_outside_serve_is_out_of_scope(self):
        findings, _ = lint_source("""
            class Executor:
                def __init__(self):
                    self._lock = threading.Lock()

                def admit(self):
                    self._queued = 1
        """, path="src/repro/core/sample.py", select={"RL007"})
        assert findings == []

    def test_helper_with_justified_suppression(self):
        findings, suppressed = lint_source("""
            class Breaker:
                def __init__(self):
                    self._state = "closed"
                    self._lock = threading.Lock()

                def _transition(self, to):
                    # lock held by the caller
                    # repro-lint: ignore[RL007]
                    self._state = to
        """, path=SERVE, select={"RL007"})
        assert findings == []
        assert suppressed == 1


class TestRL008StrayProcessConstruction:
    def test_flags_process_outside_the_supervision_tree(self):
        findings, _ = lint_source("""
            from multiprocessing import Process

            def launch(target):
                p = Process(target=target)
                p.start()
                return p
        """, path=SERVE, select={"RL008"})
        assert [f.rule for f in findings] == ["RL008"]
        assert "repro.serve.proc" in findings[0].message

    def test_flags_context_process_too(self):
        findings, _ = lint_source("""
            import multiprocessing

            def launch(ctx, target):
                return multiprocessing.get_context("spawn").Process(
                    target=target
                )
        """, path="src/repro/core/sample.py", select={"RL008"})
        assert [f.rule for f in findings] == ["RL008"]

    def test_the_supervisor_package_is_exempt(self):
        findings, _ = lint_source("""
            def spawn(ctx, target):
                return ctx.Process(target=target, daemon=True)
        """, path="src/repro/serve/proc/supervisor.py",
            select={"RL008"})
        assert findings == []

    def test_tests_are_exempt(self):
        findings, _ = lint_source("""
            from multiprocessing import Process

            def probe():
                return Process(target=print)
        """, path="tests/test_sample.py", select={"RL008"})
        assert findings == []

    def test_unrelated_calls_pass(self):
        findings, _ = lint_source("""
            def run(pool):
                return pool.submit(print)
        """, path=SERVE, select={"RL008"})
        assert findings == []


WORKER = "src/repro/serve/proc/worker.py"
HUB = "src/repro/obs/hub.py"


class TestRL009BlockingIOUnderObsLock:
    def test_flags_send_under_telemetry_lock(self):
        findings, _ = lint_source("""
            class Worker:
                def flush(self):
                    with self._tel_lock:
                        send_frame(self.conn, 20, {"spans": self._spans})
        """, path=WORKER, select={"RL009"})
        assert [f.rule for f in findings] == ["RL009"]
        assert "_tel_lock" in findings[0].message

    def test_flags_file_write_under_hub_lock(self):
        findings, _ = lint_source("""
            class Hub:
                def export(self, fh):
                    with self._lock:
                        fh.write(self._dump())
                        fh.flush()
        """, path=HUB, select={"RL009"})
        assert [f.rule for f in findings] == ["RL009", "RL009"]

    def test_send_lock_is_exempt(self):
        findings, _ = lint_source("""
            class Worker:
                def send(self, kind, payload):
                    with self._send_lock:
                        send_frame(self.conn, kind, payload)
        """, path=WORKER, select={"RL009"})
        assert findings == []

    def test_swap_then_send_outside_lock_passes(self):
        findings, _ = lint_source("""
            class Worker:
                def flush(self):
                    with self._tel_lock:
                        spans, self._spans = self._spans, []
                    send_frame(self.conn, 20, {"spans": spans})
        """, path=WORKER, select={"RL009"})
        assert findings == []

    def test_nested_def_under_lock_is_not_flagged(self):
        findings, _ = lint_source("""
            class Hub:
                def exporter(self):
                    with self._lock:
                        def later():
                            send_frame(self.conn, 20, {})
                        self._cb = later
        """, path=HUB, select={"RL009"})
        assert findings == []

    def test_other_files_are_out_of_scope(self):
        findings, _ = lint_source("""
            class Executor:
                def flush(self):
                    with self._lock:
                        send_frame(self.conn, 20, {})
        """, path="src/repro/serve/executor.py", select={"RL009"})
        assert findings == []


class TestSuppression:
    SOURCE = """
        import random
        r = random.Random()  # repro-lint: ignore[RL001]
    """

    def test_same_line_marker(self):
        findings, suppressed = lint_source(self.SOURCE)
        assert findings == []
        assert suppressed == 1

    def test_preceding_comment_line_marker(self):
        findings, suppressed = lint_source("""
            import random
            # seeded by the caller in every real path
            # repro-lint: ignore[RL001]
            r = random.Random()
        """)
        assert findings == []
        assert suppressed == 1

    def test_bare_ignore_silences_all_rules(self):
        findings, suppressed = lint_source("""
            import random
            r = random.Random()  # repro-lint: ignore
        """)
        assert findings == []
        assert suppressed == 1

    def test_wrong_code_does_not_suppress(self):
        findings, _ = lint_source("""
            import random
            r = random.Random()  # repro-lint: ignore[RL005]
        """)
        assert [f.rule for f in findings] == ["RL001"]


class TestRunnerAndReporters:
    def test_lint_paths_on_directory(self, tmp_path):
        (tmp_path / "good.py").write_text("x = 1\n")
        (tmp_path / "bad.py").write_text(
            "import random\nr = random.Random()\n"
        )
        result = lint_paths([str(tmp_path)])
        assert result.checked_files == 2
        assert [f.rule for f in result.findings] == ["RL001"]
        assert not result.ok

    def test_unparsable_file_is_rl000(self, tmp_path):
        bad = tmp_path / "broken.py"
        bad.write_text("def f(:\n")
        result = lint_paths([str(bad)])
        assert [f.rule for f in result.findings] == ["RL000"]

    def test_json_report_shape(self, tmp_path):
        (tmp_path / "bad.py").write_text(
            "import random\nr = random.Random()\n"
        )
        result = lint_paths([str(tmp_path)])
        payload = json.loads(render_json(result))
        assert set(payload) == {"findings", "checked_files", "suppressed"}
        finding = payload["findings"][0]
        assert finding["rule"] == "RL001"
        assert finding["line"] == 2

    def test_text_report(self, tmp_path):
        (tmp_path / "bad.py").write_text(
            "import random\nr = random.Random()\n"
        )
        out = render_text(lint_paths([str(tmp_path)]))
        assert "RL001" in out and "1 finding(s)" in out

    def test_cli_exit_codes(self, tmp_path, capsys):
        good = tmp_path / "good.py"
        good.write_text("x = 1\n")
        assert lint_main([str(good)]) == 0
        bad = tmp_path / "bad.py"
        bad.write_text("import random\nr = random.Random()\n")
        assert lint_main([str(bad)]) == 1
        capsys.readouterr()

    def test_cli_json_file(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("import random\nr = random.Random()\n")
        report_path = tmp_path / "report.json"
        assert lint_main([str(bad), "--json", str(report_path)]) == 1
        payload = json.loads(report_path.read_text())
        assert payload["findings"][0]["rule"] == "RL001"
        capsys.readouterr()

    def test_cli_select(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("import random\nr = random.Random()\n")
        assert lint_main([str(bad), "--select", "RL005"]) == 0
        capsys.readouterr()

    def test_rules_listing(self, capsys):
        assert lint_main(["--rules"]) == 0
        out = capsys.readouterr().out
        for code in ("RL001", "RL002", "RL003", "RL004", "RL005"):
            assert code in out


class TestShippedTreeIsClean:
    def test_src_repro_lints_clean(self):
        result = lint_paths([str(REPO / "src" / "repro")])
        assert result.findings == [], render_text(result)
        assert result.checked_files > 50

    def test_module_invocation(self):
        proc = subprocess.run(
            [sys.executable, "-m", "tools.repro_lint", "src/repro"],
            cwd=REPO, capture_output=True, text=True,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "0 finding(s)" in proc.stdout


DURABILITY = "src/repro/serve/durability/wal.py"


class TestRL010UnsyncedDurabilityWrite:
    def test_flags_unsynced_write(self):
        findings, _ = lint_source("""
            import json

            def dump(path, state):
                with open(path, "w") as fh:
                    json.dump(state, fh)
        """, path=DURABILITY, select={"RL010"})
        assert [f.rule for f in findings] == ["RL010"]
        assert "fsync" in findings[0].message

    def test_fsync_in_the_same_function_passes(self):
        findings, _ = lint_source("""
            import os

            def dump(path, data):
                with open(path, "wb") as fh:
                    fh.write(data)
                    fh.flush()
                    os.fsync(fh.fileno())
        """, path=DURABILITY, select={"RL010"})
        assert findings == []

    def test_the_dir_sync_helper_counts(self):
        findings, _ = lint_source("""
            def rotate(state_dir, path):
                fh = open(path, "ab")
                _fsync_dir(state_dir)
                return fh
        """, path=DURABILITY, select={"RL010"})
        assert findings == []

    def test_writable_os_open_is_flagged(self):
        findings, _ = lint_source("""
            import os

            def ack(path):
                return os.open(path, os.O_WRONLY | os.O_APPEND)
        """, path=DURABILITY, select={"RL010"})
        assert [f.rule for f in findings] == ["RL010"]

    def test_reads_pass(self):
        findings, _ = lint_source("""
            def load(path):
                with open(path, "rb") as fh:
                    return fh.read()
        """, path=DURABILITY, select={"RL010"})
        assert findings == []

    def test_outside_the_durability_package_is_exempt(self):
        findings, _ = lint_source("""
            def dump(path, text):
                with open(path, "w") as fh:
                    fh.write(text)
        """, path=SERVE, select={"RL010"})
        assert findings == []

    def test_a_nested_function_does_not_borrow_the_sync(self):
        """The fsync must live in the scope doing the writing — an
        enclosing function's sync says nothing about when the nested
        writer actually runs."""
        findings, _ = lint_source("""
            import os

            def outer(path):
                def write(data):
                    with open(path, "w") as fh:
                        fh.write(data)
                os.fsync(0)
                return write
        """, path=DURABILITY, select={"RL010"})
        assert [f.rule for f in findings] == ["RL010"]

    def test_suppression_with_justification(self):
        findings, suppressed = lint_source("""
            def report(path, text):
                # repro-lint: ignore[RL010] — harness artifact only
                with open(path, "w") as fh:
                    fh.write(text)
        """, path=DURABILITY, select={"RL010"})
        assert findings == []
        assert suppressed == 1
