"""Cross-module integration tests: the paper's flows end-to-end."""

import numpy as np
import pytest

from repro import (
    CADViewBuilder, CADViewConfig, DBExplorer, generate_usedcars,
)
from repro.core.optimizer import recommended_config
from repro.facets import FacetedEngine, TPFacetSession
from repro.query import QueryEngine, parse_predicate


class TestMaryScenario:
    """Example 1 of the paper, end to end through the SQL dialect."""

    @pytest.fixture(scope="class")
    def dbx(self, cars):
        d = DBExplorer(CADViewConfig(seed=1))
        d.register("D", cars)
        return d

    def test_initial_lookup_query(self, dbx):
        r = dbx.execute(
            "SELECT * FROM D WHERE Mileage BETWEEN 10K AND 30K AND "
            "Transmission = Automatic AND BodyType = SUV"
        )
        assert len(r) > 100  # "a large result set with thousands of tuples"

    def test_cadview_then_highlight_then_reorder(self, dbx):
        cad = dbx.execute(
            "CREATE CADVIEW M AS SET pivot = Make SELECT Price FROM D "
            "WHERE Mileage BETWEEN 10K AND 30K AND Transmission = Automatic "
            "AND BodyType = SUV AND Make IN (Jeep, Toyota, Honda, Ford, "
            "Chevrolet) LIMIT COLUMNS 5 IUNITS 3"
        )
        # conditional context: the Year ranges reflect the low mileage
        years = cad.view.labels("Year")
        assert all(int(label.split("-")[0]) >= 2008 for label in years)

        hits = dbx.execute(
            "HIGHLIGHT SIMILAR IUNITS IN M WHERE SIMILARITY(Chevrolet, 1) > 2.0"
        )
        for ref, sim in hits:
            assert sim > 2.0

        reordered = dbx.execute(
            "REORDER ROWS IN M ORDER BY SIMILARITY(Chevrolet) DESC"
        )
        assert reordered.pivot_values[0] == "Chevrolet"

    def test_hidden_attribute_selectable_via_surrogate(self, dbx, cars):
        """Limitation 2: pick V4 engines without the Engine facet by
        using an IUnit's queriable labels as the selection."""
        # the user pins Engine (a hidden attribute) as a Compare
        # Attribute — allowed by the query model even though the facet
        # panel cannot select it
        cad = dbx.execute(
            "CREATE CADVIEW H AS SET pivot = Make SELECT Engine, Model, "
            "Price FROM D WHERE BodyType = SUV AND Make = Jeep IUNITS 3"
        )
        assert "Engine" in cad.compare_attributes
        # find an IUnit whose Engine display is V4
        v4_units = [
            u for u in cad.all_iunits() if u.display.get("Engine") == ("V4",)
        ]
        assert v4_units
        unit = v4_units[0]
        # select using the *queriable* compare attributes of that IUnit
        view = cad.view
        preds = []
        for attr in cad.compare_attributes:
            if attr == "Engine" or not unit.display.get(attr):
                continue
            if not cars.schema[attr].queriable:
                continue
            code = view.code_of(attr, unit.display[attr][0])
            preds.append(view.predicate_for(attr, code))
            if len(preds) == 2:
                break
        selection = preds[0]
        for p in preds[1:]:
            selection = selection & p
        picked = QueryEngine.select(cars, selection)
        v4_share = picked.value_counts("Engine").get("V4", 0) / len(picked)
        assert v4_share > 0.5  # the surrogate mostly selects V4s


class TestScaleAndOptimizations:
    def test_interactive_latency_at_scale(self):
        """Sec. 6.3's headline: optimized CAD View under ~1s at 40K.

        We build 20K rows to keep the suite fast; our numpy substrate is
        ~10x faster than the paper's stack, so the margin is wide.
        """
        cars = generate_usedcars(20_000, seed=5)
        pred = parse_predicate("Transmission = Automatic")
        result = QueryEngine.select(cars, pred)
        cfg = recommended_config(
            CADViewConfig(compare_limit=5, iunits_k=3, seed=0), len(result)
        )
        cad = CADViewBuilder(cfg).build(result, "Make",
                                        exclude=("Transmission",))
        assert cad.profile.total_s < 1.0

    def test_profile_three_way_split(self, cars):
        result = QueryEngine.select(cars, parse_predicate("BodyType = SUV"))
        cad = CADViewBuilder(CADViewConfig(seed=0)).build(
            result, "Make", exclude=("BodyType",)
        )
        p = cad.profile.as_dict()
        assert set(p) >= {"compare_attrs_s", "iunits_s", "others_s", "total_s"}


class TestTPFacetFlow:
    def test_full_session(self, mushroom):
        engine = FacetedEngine(mushroom)
        s = TPFacetSession(engine, CADViewConfig(seed=2))
        s.toggle("bruises", "false")
        assert s.count() < len(mushroom)
        s.set_pivot("odor")
        cad = s.cadview()
        assert cad.pivot_attribute == "odor"
        # click-to-highlight then click-to-reorder
        first_value = cad.pivot_values[0]
        s.click_iunit(first_value, 1, threshold=0.0)
        reordered = s.click_pivot_value(first_value)
        assert reordered.pivot_values[0] == first_value
        # selections survive the CAD phase
        assert s.selections == {"bruises": {"false"}}
