"""Unit tests for the workload log (writer, capture, replay, validator)."""

import importlib.util
import json
import threading
from pathlib import Path

import pytest

from repro.core import CADViewConfig, DBExplorer
from repro.dataset.generators import generate_usedcars
from repro.errors import AnalysisError, ParseError
from repro.obs import (
    NO_WORKLOG,
    NullWorkLogWriter,
    WORKLOG_VERSION,
    WorkLogWriter,
    iter_worklog,
    read_worklog,
    replay,
    statement_kind,
)
from repro.query.parser import parse


def _load_check_trace():
    """Import benchmarks/check_trace.py (not an installed package)."""
    path = Path(__file__).parent.parent / "benchmarks" / "check_trace.py"
    spec = importlib.util.spec_from_file_location("check_trace", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="module")
def cars():
    return generate_usedcars(2_000, seed=7)


def _explorer(cars, worklog):
    dbx = DBExplorer(CADViewConfig(seed=7), worklog=worklog)
    dbx.register("data", cars)
    return dbx


class TestStatementKind:
    @pytest.mark.parametrize("sql,kind", [
        ("SELECT Make FROM data", "select"),
        ("CREATE CADVIEW v AS SET pivot = Make SELECT Price FROM data",
         "create_cadview"),
        ("DESCRIBE data", "describe"),
        ("SHOW CADVIEWS", "show_cadviews"),
        ("DROP CADVIEW v", "drop_cadview"),
        ("EXPLAIN SELECT Make FROM data", "explain"),
    ])
    def test_known_statements(self, sql, kind):
        assert statement_kind(parse(sql)) == kind

    def test_unparsed_is_invalid(self):
        assert statement_kind(None) == "invalid"

    def test_unknown_class_snake_cases(self):
        class FancyNewStatement:
            pass

        assert statement_kind(FancyNewStatement()) == "fancy_new_statement"


class TestWorkLogWriter:
    def test_stamps_version_seq_and_clocks(self, tmp_path):
        path = str(tmp_path / "w.jsonl")
        with WorkLogWriter(path) as writer:
            writer.session(dataset="usedcars", rows=10)
            writer.statement("SELECT x FROM data", "select", "ok", 1.5)
        records = read_worklog(path)
        assert [r["kind"] for r in records] == ["session", "statement"]
        for record in records:
            assert record["v"] == WORKLOG_VERSION
            assert record["ts"] > 0
        assert [r["seq"] for r in records] == [1, 2]
        assert records[0]["t_rel_s"] <= records[1]["t_rel_s"]

    def test_closed_writer_raises(self, tmp_path):
        writer = WorkLogWriter(str(tmp_path / "w.jsonl"))
        writer.close()
        writer.close()  # idempotent
        with pytest.raises(ValueError, match="closed"):
            writer.log({"kind": "statement"})

    def test_statement_proc_envelope(self, tmp_path):
        """The supervisor stamps {shard, incarnation, ...} onto its
        records; plain statements must stay envelope-free."""
        path = str(tmp_path / "p.jsonl")
        with WorkLogWriter(path) as writer:
            writer.statement(
                "SELECT Make FROM data", "select", "ok", 1.2,
                proc={"shard": 1, "incarnation": 2,
                      "proc_attempts": 1, "cause": "crash"},
            )
            writer.statement("DESCRIBE data", "describe", "ok", 0.3)
        records = read_worklog(path)
        assert records[0]["proc"] == {
            "shard": 1, "incarnation": 2,
            "proc_attempts": 1, "cause": "crash",
        }
        assert "proc" not in records[1]

    def test_rotation_keeps_bounded_generations(self, tmp_path):
        path = tmp_path / "w.jsonl"
        writer = WorkLogWriter(str(path), max_bytes=500, max_files=2)
        for i in range(50):
            writer.statement(f"SELECT c{i} FROM data", "select", "ok", 0.1)
        writer.close()
        assert path.exists()
        assert (tmp_path / "w.jsonl.1").exists()
        # max_files=2 -> at most the live file plus .1 and .2
        generations = sorted(p.name for p in tmp_path.iterdir())
        assert len(generations) <= 3
        # every surviving line is still one complete JSON object
        for gen in generations:
            for line in (tmp_path / gen).read_text().splitlines():
                assert json.loads(line)["v"] == WORKLOG_VERSION

    def test_rotated_generations_start_with_the_session_header(
        self, tmp_path
    ):
        path = tmp_path / "w.jsonl"
        writer = WorkLogWriter(str(path), max_bytes=600, max_files=3)
        writer.session(dataset="usedcars", rows=123, seed=7)
        for i in range(40):
            writer.statement(f"SELECT c{i} FROM data", "select", "ok", 0.1)
        writer.close()
        rotated = sorted(
            p for p in tmp_path.iterdir() if p.name != "w.jsonl"
        )
        assert rotated, "the log never rotated"
        for gen in [path] + rotated:
            records = read_worklog(str(gen))
            header = records[0]
            # each generation is self-describing: replay can reconstruct
            # the dataset from any surviving file
            assert header["kind"] == "session"
            assert header["dataset"] == "usedcars"
            assert header["rows"] == 123
            # seq stays strictly increasing within the file even though
            # the re-written header consumed one mid-rotation
            seqs = [r["seq"] for r in records]
            assert seqs == sorted(seqs)
            assert len(set(seqs)) == len(seqs)
        # no temp file survives a clean rotation
        assert not (tmp_path / "w.jsonl.tmp").exists()

    def test_rotation_without_header_stays_headerless(self, tmp_path):
        path = tmp_path / "w.jsonl"
        writer = WorkLogWriter(str(path), max_bytes=400, max_files=2)
        for i in range(30):
            writer.statement(f"SELECT c{i} FROM data", "select", "ok", 0.1)
        writer.close()
        for gen in tmp_path.iterdir():
            for record in read_worklog(str(gen)):
                assert record["kind"] == "statement"

    def test_concurrent_writers_never_interleave(self, tmp_path):
        path = str(tmp_path / "w.jsonl")
        writer = WorkLogWriter(path)
        n_threads, per_thread = 8, 50

        def hammer(tid):
            for i in range(per_thread):
                writer.statement(
                    f"SELECT t{tid}_{i} FROM data", "select", "ok", 0.1
                )

        threads = [
            threading.Thread(target=hammer, args=(t,))
            for t in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        writer.close()
        records = read_worklog(path)
        assert len(records) == n_threads * per_thread
        seqs = [r["seq"] for r in records]
        assert seqs == sorted(seqs)
        assert len(set(seqs)) == len(seqs)
        rels = [r["t_rel_s"] for r in records]
        assert rels == sorted(rels)

    def test_from_env(self, tmp_path):
        assert WorkLogWriter.from_env({}) is None
        assert WorkLogWriter.from_env({"REPRO_WORKLOG": ""}) is None
        assert WorkLogWriter.from_env({"REPRO_WORKLOG": "0"}) is None
        path = str(tmp_path / "env.jsonl")
        writer = WorkLogWriter.from_env({"REPRO_WORKLOG": path})
        assert writer is not None and writer.enabled
        writer.close()

    def test_null_writer_is_inert(self):
        assert not NO_WORKLOG.enabled
        assert NO_WORKLOG.log({"kind": "statement"}) == {
            "kind": "statement"
        }
        NO_WORKLOG.close()
        assert isinstance(NO_WORKLOG, NullWorkLogWriter)

    def test_reader_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"v": 1}\nnot json\n')
        with pytest.raises(ValueError, match="bad.jsonl:2"):
            read_worklog(str(path))
        path.write_text('[1, 2]\n')
        with pytest.raises(ValueError, match="not an object"):
            list(iter_worklog(str(path)))

    def test_tolerant_reader_skips_truncated_trailing_line(self, tmp_path):
        """A writer killed mid-write leaves a torn last line; the
        tolerant reader must recover every intact record and say how
        many lines it dropped."""
        path = tmp_path / "torn.jsonl"
        path.write_text(
            '{"kind": "session", "v": 1}\n'
            '{"kind": "statement", "statement": "SELECT Make FROM data"}\n'
            '{"kind": "statement", "statement": "SELECT Pri'  # torn
        )
        corrupt: list = []
        records = read_worklog(
            str(path), strict=False, corrupt_lines=corrupt
        )
        assert [r["kind"] for r in records] == ["session", "statement"]
        assert corrupt == [3]

    def test_tolerant_reader_skips_mid_file_corruption(self, tmp_path):
        path = tmp_path / "mid.jsonl"
        path.write_text(
            '{"kind": "session"}\n'
            'garbage here\n'
            '[1, 2, 3]\n'
            '{"kind": "statement", "statement": "DESCRIBE data"}\n'
        )
        corrupt: list = []
        records = read_worklog(
            str(path), strict=False, corrupt_lines=corrupt
        )
        assert len(records) == 2
        assert corrupt == [2, 3]

    def test_strict_reader_still_fails_on_the_same_file(self, tmp_path):
        path = tmp_path / "torn.jsonl"
        path.write_text('{"kind": "session"}\n{"kind": "stat')
        with pytest.raises(ValueError, match="torn.jsonl:2"):
            read_worklog(str(path), strict=True)


class TestExplorerCapture:
    def test_statements_logged_with_phases(self, tmp_path, cars):
        path = str(tmp_path / "s.jsonl")
        with WorkLogWriter(path) as worklog:
            dbx = _explorer(cars, worklog)
            dbx.execute("SELECT Make FROM data LIMIT 3")
            dbx.execute(
                "CREATE CADVIEW v AS SET pivot = Make SELECT Price, Mileage"
                " FROM data WHERE BodyType = SUV LIMIT COLUMNS 3 IUNITS 2"
            )
        select_rec, cad_rec = read_worklog(path)
        assert select_rec["statement_kind"] == "select"
        assert select_rec["status"] == "ok"
        assert select_rec["rows_out"] == 3
        assert select_rec["error"] is None
        assert cad_rec["statement_kind"] == "create_cadview"
        assert cad_rec["pivot"] == "Make"
        assert cad_rec["rows_in"] > 0
        assert set(cad_rec["phases_ms"]) == {
            "compare_attrs", "iunits", "others"
        }
        assert sum(cad_rec["phases_ms"].values()) <= cad_rec["elapsed_ms"]

    def test_analyzer_rejection_still_logged(self, tmp_path, cars):
        path = str(tmp_path / "s.jsonl")
        with WorkLogWriter(path) as worklog:
            dbx = _explorer(cars, worklog)
            with pytest.raises(AnalysisError):
                dbx.execute(
                    "SELECT Price FROM data"
                    " WHERE Price > 9000 AND Price < 5000"
                )
            with pytest.raises(ParseError):
                dbx.execute("FROBNICATE everything")
        bad, unparsable = read_worklog(path)
        assert bad["status"] == "analysis_error"
        assert "QA" in bad["error"]
        assert unparsable["status"] == "parse_error"
        assert unparsable["statement_kind"] == "invalid"

    def test_warnings_recorded_on_ok_statement(self, tmp_path, cars):
        path = str(tmp_path / "s.jsonl")
        with WorkLogWriter(path) as worklog:
            dbx = _explorer(cars, worklog)
            # numeric pivot: executes, but the analyzer warns (QA401)
            dbx.execute(
                "CREATE CADVIEW p AS SET pivot = Price SELECT Mileage"
                " FROM data WHERE BodyType = SUV"
                " LIMIT COLUMNS 3 IUNITS 2"
            )
        (record,) = read_worklog(path)
        assert record["status"] == "ok"
        assert any("QA401" in w for w in record["analysis_warnings"])

    def test_no_worklog_writes_nothing(self, tmp_path, cars):
        dbx = _explorer(cars, NO_WORKLOG)
        dbx.execute("SELECT Make FROM data LIMIT 1")
        assert list(tmp_path.iterdir()) == []


class TestReplay:
    def test_replay_reproduces_statuses(self, tmp_path, cars):
        path = str(tmp_path / "s.jsonl")
        with WorkLogWriter(path) as worklog:
            dbx = _explorer(cars, worklog)
            worklog.session(dataset="usedcars", rows=2_000, seed=7)
            dbx.execute("SELECT Make FROM data LIMIT 3")
            dbx.execute(
                "CREATE CADVIEW v AS SET pivot = Make SELECT Price"
                " FROM data WHERE BodyType = SUV LIMIT COLUMNS 3 IUNITS 2"
            )
            with pytest.raises(AnalysisError):
                dbx.execute("SELECT Nope FROM data")
        records = read_worklog(path)
        report = replay(records, _explorer(cars, NO_WORKLOG))
        assert report.statements == 3
        assert report.errors == 1
        assert report.statuses == {"ok": 2, "analysis_error": 1}
        assert report.skipped == 0  # the session header is not "skipped"
        assert set(report.by_kind) == {"select", "create_cadview"}
        stats = report.by_kind["create_cadview"]
        assert stats["count"] == 1
        assert stats["p50_ms"] <= stats["p95_ms"] <= stats["p99_ms"]
        assert report.phase_totals_ms["iunits"] > 0
        assert report.throughput_stmt_s > 0

    def test_replay_skips_malformed_records(self, cars):
        records = [
            {"kind": "session"},
            {"kind": "statement"},                   # no statement text
            {"kind": "statement", "statement": "  "},
            {"kind": "garbage"},
            {"kind": "statement", "statement": "SELECT Make FROM data",
             "statement_kind": "select"},
        ]
        report = replay(records, _explorer(cars, NO_WORKLOG))
        assert report.statements == 1
        assert report.skipped == 3

    def test_render_mentions_percentiles(self, cars):
        records = [{
            "kind": "statement", "statement": "SELECT Make FROM data",
            "statement_kind": "select",
        }]
        text = replay(records, _explorer(cars, NO_WORKLOG)).render()
        assert "p50" in text and "p95" in text and "p99" in text
        assert "select" in text


class TestWorklogValidator:
    def _ok_lines(self):
        return [
            {"v": 1, "seq": 1, "ts": 1e9, "t_rel_s": 0.0,
             "kind": "session", "dataset": "usedcars"},
            {"v": 1, "seq": 2, "ts": 1e9, "t_rel_s": 0.5,
             "kind": "statement", "statement": "SELECT x FROM data",
             "statement_kind": "select", "status": "ok",
             "elapsed_ms": 2.0,
             "phases_ms": {"iunits": 1.0, "others": 0.5}},
        ]

    def _write(self, tmp_path, lines):
        path = tmp_path / "w.jsonl"
        path.write_text("".join(
            json.dumps(line) + "\n" if isinstance(line, dict) else line
            for line in lines
        ))
        return str(path)

    def test_valid_log_passes(self, tmp_path):
        check = _load_check_trace()
        assert check.validate_worklog(
            self._write(tmp_path, self._ok_lines())
        ) == []

    def test_seq_must_strictly_increase(self, tmp_path):
        check = _load_check_trace()
        lines = self._ok_lines()
        lines[1]["seq"] = 1
        problems = check.validate_worklog(self._write(tmp_path, lines))
        assert any("strictly increasing" in p for p in problems)

    def test_t_rel_must_not_go_backwards(self, tmp_path):
        check = _load_check_trace()
        lines = self._ok_lines()
        lines[0]["t_rel_s"] = 9.0
        problems = check.validate_worklog(self._write(tmp_path, lines))
        assert any("went backwards" in p for p in problems)

    def test_phase_sum_must_reconcile(self, tmp_path):
        check = _load_check_trace()
        lines = self._ok_lines()
        lines[1]["phases_ms"] = {"iunits": 100.0}
        problems = check.validate_worklog(self._write(tmp_path, lines))
        assert any("phase sum" in p for p in problems)

    def test_unknown_status_flagged(self, tmp_path):
        check = _load_check_trace()
        lines = self._ok_lines()
        lines[1]["status"] = "great"
        problems = check.validate_worklog(self._write(tmp_path, lines))
        assert any("unknown status" in p for p in problems)

    def test_non_json_line_flagged(self, tmp_path):
        check = _load_check_trace()
        lines = self._ok_lines() + ["not json\n"]
        problems = check.validate_worklog(self._write(tmp_path, lines))
        assert any("not JSON" in p for p in problems)

    def test_committed_session_log_validates(self):
        check = _load_check_trace()
        canned = (
            Path(__file__).parent.parent
            / "examples" / "session_nba.worklog.jsonl"
        )
        assert check.validate_worklog(str(canned)) == []
