"""Unit tests for repro.dataset.column."""

import numpy as np
import pytest

from repro.dataset import AttrKind, Attribute
from repro.dataset.column import Column
from repro.errors import TypeMismatchError

CAT = Attribute("color", AttrKind.CATEGORICAL)
NUM = Attribute("price", AttrKind.NUMERIC)


class TestConstruction:
    def test_from_values_categorical(self):
        c = Column.from_values(CAT, ["red", "blue", "red", None])
        assert len(c) == 4
        assert list(c) == ["red", "blue", "red", None]
        assert c.categories == ("red", "blue")

    def test_from_values_numeric(self):
        c = Column.from_values(NUM, [1, 2.5, None])
        assert list(c) == [1.0, 2.5, None]

    def test_from_values_numeric_rejects_text(self):
        with pytest.raises(TypeMismatchError):
            Column.from_values(NUM, ["abc"])

    def test_categorical_requires_categories(self):
        with pytest.raises(TypeMismatchError):
            Column(CAT, np.array([0]), categories=None)

    def test_code_out_of_range_rejected(self):
        with pytest.raises(TypeMismatchError):
            Column(CAT, np.array([5]), categories=("a",))

    def test_non_string_values_coerced(self):
        c = Column.from_values(CAT, [1, 2, 1])
        assert c.categories == ("1", "2")

    def test_data_is_readonly(self):
        c = Column.from_values(NUM, [1.0, 2.0])
        with pytest.raises(ValueError):
            c.numbers[0] = 9.0


class TestAccessors:
    def test_codes_on_numeric_raises(self):
        with pytest.raises(TypeMismatchError):
            Column.from_values(NUM, [1.0]).codes

    def test_numbers_on_categorical_raises(self):
        with pytest.raises(TypeMismatchError):
            Column.from_values(CAT, ["x"]).numbers

    def test_code_of(self):
        c = Column.from_values(CAT, ["red", "blue"])
        assert c.code_of("blue") == 1
        assert c.code_of("green") == -1

    def test_code_of_numeric_raises(self):
        with pytest.raises(TypeMismatchError):
            Column.from_values(NUM, [1.0]).code_of("1")

    def test_min_max(self):
        c = Column.from_values(NUM, [3.0, None, 1.0, 7.0])
        assert c.min() == 1.0
        assert c.max() == 7.0


class TestOperations:
    def test_take(self):
        c = Column.from_values(CAT, ["a", "b", "c"])
        t = c.take(np.array([2, 0]))
        assert list(t) == ["c", "a"]

    def test_mask(self):
        c = Column.from_values(NUM, [1.0, 2.0, 3.0])
        m = c.mask(np.array([True, False, True]))
        assert list(m) == [1.0, 3.0]

    def test_distinct_values_categorical_only_occurring(self):
        c = Column.from_values(CAT, ["a", "b", "a"])
        sub = c.mask(np.array([True, False, True]))
        assert sub.distinct_values() == ("a",)

    def test_distinct_values_numeric_sorted(self):
        c = Column.from_values(NUM, [3.0, 1.0, 3.0, None])
        assert c.distinct_values() == (1.0, 3.0)

    def test_value_counts_categorical(self):
        c = Column.from_values(CAT, ["a", "b", "a", None])
        assert c.value_counts() == {"a": 2, "b": 1}

    def test_value_counts_numeric(self):
        c = Column.from_values(NUM, [1.0, 1.0, 2.0, None])
        assert c.value_counts() == {1.0: 2, 2.0: 1}

    def test_value_counts_empty(self):
        assert Column.from_values(CAT, []).value_counts() == {}

    def test_missing_count(self):
        assert Column.from_values(CAT, ["a", None]).missing_count() == 1
        assert Column.from_values(NUM, [None, None]).missing_count() == 2

    def test_with_categories_remaps(self):
        c = Column.from_values(CAT, ["a", "b", "a"])
        r = c.with_categories(["b", "a", "z"])
        assert list(r) == ["a", "b", "a"]
        assert r.categories == ("b", "a", "z")
        assert list(r.codes) == [1, 0, 1]

    def test_with_categories_drops_unknown(self):
        c = Column.from_values(CAT, ["a", "b"])
        r = c.with_categories(["b"])
        assert list(r) == [None, "b"]

    def test_with_categories_preserves_missing(self):
        c = Column.from_values(CAT, ["a", None])
        r = c.with_categories(["a"])
        assert list(r) == ["a", None]
