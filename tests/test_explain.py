"""EXPLAIN / EXPLAIN ANALYZE and the traced build path.

The acceptance contract: EXPLAIN ANALYZE's top-level totals reconcile
with the legacy BuildProfile buckets (within 5%), traces are stable
under a fixed seed, and fault-injected builds still produce complete,
annotated span trees.
"""

import numpy as np
import pytest

from repro import (
    CADViewBuilder,
    CADViewConfig,
    DBExplorer,
    FaultInjector,
    Table,
    Tracer,
    parse,
    render_trace,
)
from repro.dataset import AttrKind, Attribute, Schema
from repro.errors import ParseError
from repro.query.ast import (
    CreateCadViewStatement,
    ExplainStatement,
    SelectStatement,
)
from repro.robustness import Fault


def small_table(n_rows=300, pivot_card=3, seed=0) -> Table:
    schema = Schema([
        Attribute("pv", AttrKind.CATEGORICAL),
        Attribute("c0", AttrKind.CATEGORICAL),
        Attribute("c1", AttrKind.CATEGORICAL),
        Attribute("n0", AttrKind.NUMERIC),
    ])
    rng = np.random.default_rng(seed)
    rows = [
        {
            "pv": f"p{rng.integers(pivot_card)}",
            "c0": f"a{rng.integers(3)}",
            "c1": f"b{rng.integers(4)}",
            "n0": float(rng.normal(0, 10)),
        }
        for _ in range(n_rows)
    ]
    return Table.from_rows(schema, rows)


CREATE = (
    "CREATE CADVIEW V AS SET pivot = pv SELECT c0 FROM T IUNITS 2"
)


def fresh_explorer(**kwargs) -> DBExplorer:
    dbx = DBExplorer(CADViewConfig(seed=11), **kwargs)
    dbx.register("T", small_table())
    return dbx


# ------------------------------------------------------------------ parsing

class TestParsing:
    def test_explain_wraps_inner_statement(self):
        stmt = parse("EXPLAIN SELECT * FROM T")
        assert isinstance(stmt, ExplainStatement)
        assert not stmt.analyze
        assert isinstance(stmt.inner, SelectStatement)

    def test_explain_analyze_flag(self):
        stmt = parse(f"EXPLAIN ANALYZE {CREATE};")
        assert isinstance(stmt, ExplainStatement)
        assert stmt.analyze
        assert isinstance(stmt.inner, CreateCadViewStatement)

    def test_nested_explain_rejected(self):
        with pytest.raises(ParseError):
            parse("EXPLAIN EXPLAIN SELECT * FROM T")

    def test_bare_explain_rejected(self):
        with pytest.raises(ParseError):
            parse("EXPLAIN")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse("EXPLAIN SELECT * FROM T nonsense extra")


# ------------------------------------------------------------------ EXPLAIN

class TestExplain:
    def test_plain_explain_does_not_build(self):
        dbx = fresh_explorer()
        out = dbx.execute(f"EXPLAIN {CREATE}")
        assert isinstance(out, str)
        assert "CREATE CADVIEW V" in out
        assert "compare_attrs" in out and "iunits" in out
        # nothing was executed: the view does not exist
        assert dbx.execute("SHOW CADVIEWS") == []

    def test_plain_explain_select(self):
        dbx = fresh_explorer()
        out = dbx.execute("EXPLAIN SELECT * FROM T")
        assert "scan: T" in out

    def test_analyze_builds_and_renders_the_trace(self):
        dbx = fresh_explorer()
        out = dbx.execute(f"EXPLAIN ANALYZE {CREATE}")
        assert isinstance(out, str)
        assert out.startswith("cadview.build")
        for phase in ("discretize", "compare_attrs", "iunits",
                      "topk", "kmeans"):
            assert phase in out
        assert "bucket reconciliation" in out
        # ANALYZE really executed: the view now exists
        assert dbx.execute("SHOW CADVIEWS") == ["V"]
        assert dbx.last_report is not None
        assert dbx.last_report.trace is not None

    def test_analyze_select_times_the_statement(self):
        dbx = fresh_explorer()
        out = dbx.execute("EXPLAIN ANALYZE SELECT * FROM T")
        assert "execute" in out and "SelectStatement" in out


# ------------------------------------------------------------ reconciliation

class TestReconciliation:
    def test_trace_totals_match_profile_within_5_percent(self):
        tracer = Tracer("t")
        cad = CADViewBuilder(CADViewConfig(seed=3)).build(
            small_table(), pivot="pv", tracer=tracer
        )
        build = tracer.finish().find("cadview.build")[0]
        for bucket, legacy in (
            ("compare_attrs", cad.profile.compare_attrs_s),
            ("iunits", cad.profile.iunits_s),
            ("others", cad.profile.others_s),
        ):
            traced = build.bucket_total(bucket)
            assert traced == pytest.approx(legacy, rel=0.05), bucket

    def test_profile_populated_without_any_tracer(self):
        cad = CADViewBuilder(CADViewConfig(seed=3)).build(
            small_table(), pivot="pv"
        )
        assert cad.profile.total_s > 0
        assert cad.profile.iunits_s > 0


# ------------------------------------------------------------------ stability

class TestStability:
    def build_trace_text(self):
        dbx = fresh_explorer()
        dbx.execute(f"EXPLAIN ANALYZE {CREATE}")
        return render_trace(dbx.last_report.trace, show_times=False)

    def test_fixed_seed_trace_is_stable(self):
        a = self.build_trace_text()
        b = self.build_trace_text()
        assert a == b

    def test_structure_mentions_every_pivot_value(self):
        text = self.build_trace_text()
        for value in ("p0", "p1", "p2"):
            assert f"pivot:{value}" in text


# ------------------------------------------------------------------ faults

class TestFaultedTraces:
    def test_retry_annotations_land_on_spans(self):
        tracer = Tracer("t")
        faults = FaultInjector({"cluster:p0": Fault("convergence", times=1)})
        CADViewBuilder(CADViewConfig(seed=3), faults=faults).build(
            small_table(), pivot="pv", tracer=tracer
        )
        root = tracer.finish()
        retries = [
            e for s in root.walk() for e in s.events if e.kind == "retry"
        ]
        assert retries, render_trace(root)
        assert any("cluster" in e.message for e in retries)
        # the trace is complete: every span closed, every pivot present
        assert all(s.closed for s in root.walk())
        for value in ("p0", "p1", "p2"):
            assert root.find(f"pivot:{value}")

    def test_degradation_annotations_land_on_spans(self):
        tracer = Tracer("t")
        faults = FaultInjector(
            {"cluster:p0": Fault("convergence", times=None)}
        )
        cad = CADViewBuilder(CADViewConfig(seed=3), faults=faults).build(
            small_table(), pivot="pv", tracer=tracer
        )
        root = tracer.finish()
        kinds = {e.kind for s in root.walk() for e in s.events}
        assert "degradation" in kinds or "incident" in kinds
        assert cad.report.trace is root.find("cadview.build")[0]

    def test_failed_build_leaves_closed_annotated_trace(self):
        tracer = Tracer("t")
        faults = FaultInjector({"discretize": Fault("crash", times=None)})
        builder = CADViewBuilder(CADViewConfig(seed=3), faults=faults)
        with pytest.raises(Exception):
            builder.build(small_table(), pivot="pv", tracer=tracer)
        root = tracer.finish()
        assert all(s.closed for s in root.walk())
        build = root.find("cadview.build")
        assert build and build[0].status == "error"
