"""Tests for the semantic analyzer, its gate, and the check interfaces.

Covers every QA diagnostic family (see ``repro/query/diagnostics.py``),
the pre-execution gate in :class:`DBExplorer` (errors block *before*
any build work; warnings travel onto the build report and the trace),
``EXPLAIN CHECK``, the ``repro check`` CLI subcommand, and the
edit-distance suggestion machinery.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import EXIT_OK, EXIT_USAGE, main
from repro.core import DBExplorer
from repro.dataset import AttrKind, Attribute, Schema, Table
from repro.errors import AnalysisError, CADViewError, QueryError
from repro.obs.tracer import Tracer
from repro.query import (
    Analyzer,
    AnalyzerLimits,
    Cmp,
    Eq,
    SelectStatement,
    Severity,
    analyze_statement,
    levenshtein,
    parse,
    suggest,
)


@pytest.fixture()
def dbx(toy_table):
    out = DBExplorer()
    out.register("Hotels", toy_table)
    return out


def report_of(dbx, sql):
    return dbx.analyze(sql)


# -- name resolution (QA1xx) ----------------------------------------------

class TestNameResolution:
    def test_unknown_table_qa101_with_suggestion(self, dbx):
        report = report_of(dbx, "SELECT * FROM Hotelz")
        assert report.codes() == ("QA101",)
        assert report.errors[0].suggestion == "Hotels"

    def test_unknown_table_blocks_execution(self, dbx):
        with pytest.raises(AnalysisError) as exc:
            dbx.execute("SELECT * FROM Hotelz")
        assert "QA101" in str(exc.value)
        # the gate's error is still a QueryError for legacy callers
        assert isinstance(exc.value, QueryError)

    def test_unknown_column_qa102_with_span(self, dbx):
        sql = "SELECT pricee FROM Hotels"
        report = report_of(dbx, sql)
        assert report.codes() == ("QA102",)
        diag = report.errors[0]
        assert diag.suggestion == "price"
        start, end = diag.span
        assert sql[start:end] == "pricee"

    def test_unknown_where_column(self, dbx):
        report = report_of(dbx, "SELECT * FROM Hotels WHERE pricce > 3")
        assert report.codes() == ("QA102",)

    def test_unknown_order_by_column(self, dbx):
        report = report_of(
            dbx, "SELECT city FROM Hotels ORDER BY starss"
        )
        assert report.codes() == ("QA102",)
        assert report.errors[0].suggestion == "stars"

    def test_clean_statement(self, dbx):
        report = report_of(
            dbx, "SELECT city, price FROM Hotels WHERE stars >= 3"
        )
        assert report.clean
        assert report.render() == "analysis: clean"


# -- operator/type compatibility (QA2xx) ----------------------------------

class TestTypeCompatibility:
    def test_ordering_on_categorical_qa201(self, dbx):
        report = report_of(dbx, "SELECT * FROM Hotels WHERE city < 5")
        assert report.codes() == ("QA201",)
        with pytest.raises(AnalysisError):
            dbx.execute("SELECT * FROM Hotels WHERE city < 5")

    def test_string_literal_on_numeric_qa202(self, dbx):
        report = report_of(dbx, "SELECT * FROM Hotels WHERE price = Paris")
        assert "QA202" in report.codes()
        assert not report.ok

    def test_numeric_literal_on_categorical_qa203_warns(self, dbx):
        stmt = SelectStatement("Hotels", where=Eq("city", 5))
        report = dbx.analyze(stmt)
        assert "QA203" in report.codes()
        assert report.ok  # warning only

    def test_absent_value_qa204_warns_but_runs(self, dbx):
        sql = "SELECT * FROM Hotels WHERE city = Berlin"
        report = report_of(dbx, sql)
        assert "QA204" in report.codes()
        assert report.ok
        assert len(dbx.execute(sql)) == 0

    def test_hidden_attribute_qa205_warns(self, dbx):
        report = report_of(dbx, "SELECT * FROM Hotels WHERE amenity = spa")
        assert "QA205" in report.codes()
        assert report.ok


# -- predicate logic (QA3xx) ----------------------------------------------

class TestPredicateLogic:
    def test_contradictory_range_qa301_blocks(self, dbx):
        sql = "SELECT * FROM Hotels WHERE price > 9 AND price < 5"
        report = report_of(dbx, sql)
        assert report.codes() == ("QA301",)
        with pytest.raises(AnalysisError):
            dbx.execute(sql)

    def test_equal_point_outside_range_qa301(self, dbx):
        report = report_of(
            dbx, "SELECT * FROM Hotels WHERE stars = 10 AND stars < 3"
        )
        assert "QA301" in report.codes()

    def test_two_different_equalities_qa301(self, dbx):
        report = report_of(
            dbx, "SELECT * FROM Hotels WHERE city = Paris AND city = Lyon"
        )
        assert "QA301" in report.codes()

    def test_eq_and_ne_same_value_qa301(self, dbx):
        report = report_of(
            dbx, "SELECT * FROM Hotels WHERE city = Paris AND city <> Paris"
        )
        assert "QA301" in report.codes()

    def test_disjoint_in_lists_qa301(self, dbx):
        report = report_of(
            dbx,
            "SELECT * FROM Hotels "
            "WHERE city IN (Paris, Lyon) AND city IN (Nice)",
        )
        assert "QA301" in report.codes()

    def test_satisfiable_range_is_clean(self, dbx):
        report = report_of(
            dbx, "SELECT * FROM Hotels WHERE price > 5 AND price < 9"
        )
        assert report.clean

    def test_tautology_qa302_warns(self, dbx):
        sql = "SELECT * FROM Hotels WHERE price < 5 OR price >= 5"
        report = report_of(dbx, sql)
        assert "QA302" in report.codes()
        assert report.ok
        dbx.execute(sql)  # warnings never block

    def test_duplicate_conjunct_qa303(self, dbx):
        report = report_of(
            dbx, "SELECT * FROM Hotels WHERE price > 5 AND price > 5"
        )
        assert "QA303" in report.codes()
        assert report.ok

    def test_duplicate_disjunct_qa303(self, dbx):
        report = report_of(
            dbx, "SELECT * FROM Hotels WHERE city = Paris OR city = Paris"
        )
        assert "QA303" in report.codes()

    def test_negated_and_is_not_folded(self, dbx):
        # NOT (price > 9 AND price < 5) is always TRUE, not empty — the
        # analyzer must not report a contradiction under negation
        report = report_of(
            dbx,
            "SELECT * FROM Hotels WHERE NOT (price > 9 AND price < 5)",
        )
        assert "QA301" not in report.codes()


# -- CADVIEW rules (QA4xx) ------------------------------------------------

class TestCadviewRules:
    def test_numeric_pivot_qa401_warns(self, dbx):
        report = report_of(
            dbx,
            "CREATE CADVIEW v AS SET pivot = price "
            "SELECT stars FROM Hotels",
        )
        assert "QA401" in report.codes()
        assert report.ok

    def test_all_missing_pivot_qa402(self):
        schema = Schema([
            Attribute("label", AttrKind.CATEGORICAL),
            Attribute("x", AttrKind.NUMERIC),
        ])
        table = Table.from_rows(schema, [
            {"label": None, "x": 1.0}, {"label": None, "x": 2.0},
        ])
        dbx = DBExplorer()
        dbx.register("T", table)
        report = dbx.analyze(
            "CREATE CADVIEW v AS SET pivot = label SELECT x FROM T"
        )
        assert "QA402" in report.codes()
        assert not report.ok

    def test_pivot_in_select_qa403_warns(self, dbx):
        report = report_of(
            dbx,
            "CREATE CADVIEW v AS SET pivot = city "
            "SELECT city, price FROM Hotels",
        )
        assert "QA403" in report.codes()

    def test_limit_columns_cap_qa404(self, dbx):
        report = report_of(
            dbx,
            "CREATE CADVIEW v AS SET pivot = city SELECT price "
            "FROM Hotels LIMIT COLUMNS 1000",
        )
        assert "QA404" in report.codes()
        assert not report.ok

    def test_iunits_cap_qa405(self, dbx):
        report = report_of(
            dbx,
            "CREATE CADVIEW v AS SET pivot = city SELECT price "
            "FROM Hotels IUNITS 1000",
        )
        assert "QA405" in report.codes()
        assert not report.ok

    def test_caps_are_configurable(self, toy_table):
        dbx = DBExplorer(
            analyzer_limits=AnalyzerLimits(max_iunits=2000)
        )
        dbx.register("Hotels", toy_table)
        report = dbx.analyze(
            "CREATE CADVIEW v AS SET pivot = city SELECT price "
            "FROM Hotels IUNITS 1000"
        )
        assert "QA405" not in report.codes()

    def test_wide_pivot_qa406_warns(self, toy_table):
        dbx = DBExplorer(
            analyzer_limits=AnalyzerLimits(wide_pivot_warning=2)
        )
        dbx.register("Hotels", toy_table)
        report = dbx.analyze(
            "CREATE CADVIEW v AS SET pivot = city SELECT price FROM Hotels"
        )
        assert "QA406" in report.codes()
        assert report.ok

    def test_order_by_categorical_qa407(self, dbx):
        sql = (
            "CREATE CADVIEW v AS SET pivot = stars "
            "SELECT city FROM Hotels ORDER BY city"
        )
        report = report_of(dbx, sql)
        assert "QA407" in report.codes()
        # AnalysisError doubles as CADViewError for legacy callers
        with pytest.raises(CADViewError):
            dbx.execute(sql)

    def test_order_by_outside_select_qa408_warns(self, dbx):
        report = report_of(
            dbx,
            "CREATE CADVIEW v AS SET pivot = city "
            "SELECT stars FROM Hotels ORDER BY price",
        )
        assert "QA408" in report.codes()
        assert report.ok


# -- view-registry rules (QA5xx) ------------------------------------------

@pytest.fixture()
def dbx_with_view(dbx):
    dbx.execute(
        "CREATE CADVIEW Cities AS SET pivot = city "
        "SELECT price, stars FROM Hotels IUNITS 2"
    )
    return dbx


class TestViewRegistryRules:
    def test_unknown_view_qa501(self, dbx_with_view):
        report = dbx_with_view.analyze(
            "HIGHLIGHT SIMILAR IUNITS IN Citiez "
            "WHERE SIMILARITY(Paris, 1) > 1"
        )
        assert report.codes() == ("QA501",)
        assert report.errors[0].suggestion == "Cities"

    def test_unknown_pivot_value_qa502(self, dbx_with_view):
        report = dbx_with_view.analyze(
            "HIGHLIGHT SIMILAR IUNITS IN Cities "
            "WHERE SIMILARITY(Pariss, 1) > 1"
        )
        assert "QA502" in report.codes()
        assert report.errors[0].suggestion == "Paris"

    def test_iunit_out_of_range_qa503(self, dbx_with_view):
        report = dbx_with_view.analyze(
            "HIGHLIGHT SIMILAR IUNITS IN Cities "
            "WHERE SIMILARITY(Paris, 99) > 1"
        )
        assert "QA503" in report.codes()

    def test_threshold_above_max_qa504_warns(self, dbx_with_view):
        report = dbx_with_view.analyze(
            "HIGHLIGHT SIMILAR IUNITS IN Cities "
            "WHERE SIMILARITY(Paris, 1) > 99"
        )
        assert "QA504" in report.codes()
        assert report.ok

    def test_reorder_checks_view_and_value(self, dbx_with_view):
        report = dbx_with_view.analyze(
            "REORDER ROWS IN Nope ORDER BY SIMILARITY(Paris) DESC"
        )
        assert "QA501" in report.codes()
        report = dbx_with_view.analyze(
            "REORDER ROWS IN Cities ORDER BY SIMILARITY(Atlantis) DESC"
        )
        assert "QA502" in report.codes()

    def test_drop_unknown_view_qa501(self, dbx):
        with pytest.raises(CADViewError):
            dbx.execute("DROP CADVIEW ghost")


# -- the gate: blocking, warnings, EXPLAIN CHECK --------------------------

class TestGate:
    def test_rejection_happens_before_any_build(self, toy_table):
        tracer = Tracer("session")
        dbx = DBExplorer(tracer=tracer)
        dbx.register("Hotels", toy_table)
        with pytest.raises(AnalysisError):
            dbx.execute(
                "CREATE CADVIEW v AS SET pivot = ghost "
                "SELECT price FROM Hotels"
            )
        root = tracer.finish()
        assert root.find("cadview.build") == []

    def test_warnings_reach_build_report_and_trace(self, toy_table):
        tracer = Tracer("session")
        dbx = DBExplorer(tracer=tracer)
        dbx.register("Hotels", toy_table)
        cad = dbx.execute(
            "CREATE CADVIEW v AS SET pivot = price "
            "SELECT stars FROM Hotels IUNITS 2"
        )
        assert any("QA401" in w for w in cad.report.analysis_warnings)
        assert "analysis_warnings" in cad.report.as_dict()
        assert any("QA401" in line for line in cad.report.lines())

    def test_last_analysis_exposed(self, dbx):
        dbx.execute("SELECT * FROM Hotels WHERE city = Berlin")
        assert dbx.last_analysis is not None
        assert "QA204" in dbx.last_analysis.codes()

    def test_explain_check_clean(self, dbx):
        out = dbx.execute("EXPLAIN CHECK SELECT city FROM Hotels")
        assert out == "analysis: clean"

    def test_explain_check_renders_warnings(self, dbx):
        out = dbx.execute(
            "EXPLAIN CHECK SELECT * FROM Hotels WHERE city = Berlin"
        )
        assert "QA204" in out
        assert "warning" in out

    def test_explain_check_raises_on_errors(self, dbx):
        with pytest.raises(AnalysisError) as exc:
            dbx.execute("EXPLAIN CHECK SELECT nope FROM Hotels")
        assert "QA102" in str(exc.value)

    def test_plain_explain_is_not_gated(self, dbx):
        # describing the plan of a broken statement is still useful
        out = dbx.execute("EXPLAIN SELECT nope FROM Ghost")
        assert "Ghost" in out

    def test_engine_helpers(self, dbx, toy_table):
        report = dbx.engine.analyze("SELECT wat FROM Hotels")
        assert "QA102" in report.codes()
        dbx.engine.check("SELECT city FROM Hotels")  # clean: no raise
        with pytest.raises(AnalysisError):
            dbx.engine.check("SELECT wat FROM Hotels")

    def test_analyzer_without_catalog_still_checks_logic(self):
        stmt = parse("SELECT * FROM Anywhere WHERE x > 9 AND x < 5")
        report = analyze_statement(stmt)
        assert "QA301" in report.codes()
        # no catalog: name resolution cannot (and must not) fire
        assert "QA101" not in report.codes()

    def test_programmatic_statement_without_spans(self, dbx):
        stmt = SelectStatement("Hotels", where=Cmp("price", ">", 1e9))
        report = dbx.analyze(stmt)
        assert report.clean


# -- the CLI subcommand ----------------------------------------------------

class TestCheckCommand:
    ARGS = ["check", "--dataset", "usedcars", "--rows", "300"]

    def test_error_exits_1(self, capsys):
        rc = main(self.ARGS + [
            "--sql",
            "CREATE CADVIEW v AS SET pivot = Nope SELECT Price FROM data",
        ])
        assert rc == EXIT_USAGE
        assert "QA102" in capsys.readouterr().out

    def test_warning_exits_0(self, capsys):
        rc = main(self.ARGS + [
            "--sql", "SELECT * FROM data WHERE Make = Atlantis",
        ])
        assert rc == EXIT_OK
        assert "QA204" in capsys.readouterr().out

    def test_clean_exits_0(self, capsys):
        rc = main(self.ARGS + ["--sql", "SELECT Make FROM data"])
        assert rc == EXIT_OK
        assert "analysis: clean" in capsys.readouterr().out

    def test_json_report(self, capsys):
        rc = main(self.ARGS + [
            "--json", "--sql", "SELECT * FROM data WHERE Price > 9 AND Price < 5",
        ])
        assert rc == EXIT_USAGE
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is False
        assert payload["diagnostics"][0]["code"] == "QA301"

    def test_explain_check_through_cadview_command(self, capsys):
        rc = main([
            "cadview", "--dataset", "usedcars", "--rows", "300",
            "--sql", "EXPLAIN CHECK SELECT * FROM data WHERE Make < 5",
        ])
        assert rc == EXIT_USAGE  # analysis error, not build failure (2)
        assert "QA201" in capsys.readouterr().err


# -- diagnostics plumbing --------------------------------------------------

class TestDiagnostics:
    def test_levenshtein(self):
        assert levenshtein("price", "price") == 0
        assert levenshtein("pricee", "price") == 1
        assert levenshtein("PRICE", "price") == 0  # case-insensitive
        assert levenshtein("abc", "xyz") == 3

    def test_suggest_picks_closest(self):
        assert suggest("pricee", ("stars", "price", "city")) == "price"
        assert suggest("zzz", ("stars", "price")) is None
        # very short names never suggest wild replacements
        assert suggest("x", ("y",)) is None

    def test_report_deduplicates(self, dbx):
        report = dbx.analyze("SELECT * FROM Hotels")
        n = len(report.diagnostics)
        report.warning("QA999", "same thing")
        report.warning("QA999", "same thing")
        assert len(report.diagnostics) == n + 1

    def test_render_shows_caret_and_counts(self, dbx):
        sql = "SELECT wat FROM Hotels"
        rendered = dbx.analyze(sql).render()
        assert "^^^" in rendered
        assert "1 error(s)" in rendered

    def test_severity_str(self):
        assert str(Severity.ERROR) == "error"
        assert str(Severity.WARNING) == "warning"

    def test_analyzer_reuse(self, dbx):
        analyzer = Analyzer(engine=dbx.engine)
        r1 = analyzer.analyze(parse("SELECT city FROM Hotels"))
        r2 = analyzer.analyze(parse("SELECT wat FROM Hotels"))
        assert r1.clean and not r2.ok
