"""Property-based tests of the semantic analyzer.

Two invariants, per the issue:

1. the analyzer never crashes on *any* statement the parser accepts —
   whatever text or predicate tree gets through ``parse``, ``analyze``
   returns a report (it may be full of errors, but it returns);
2. analyzer-clean SELECTs execute without :class:`AnalysisError` — an
   ok report is a promise that the gate will not fire.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import DBExplorer
from repro.dataset import AttrKind, Attribute, Schema, Table
from repro.errors import AnalysisError, ParseError
from repro.query import (
    And, Between, Cmp, Eq, In, IsMissing, Ne, Not, Or, Predicate,
    SelectStatement, parse,
)
from repro.query.analyzer import analyze_statement
from repro.query.diagnostics import levenshtein

SCHEMA = Schema([
    Attribute("cat", AttrKind.CATEGORICAL),
    Attribute("num", AttrKind.NUMERIC),
])

TABLE = Table.from_rows(SCHEMA, [
    {"cat": c, "num": n}
    for c in ("alpha", "beta", "gamma", None)
    for n in (0.0, 1.5, 7.0, 42.0, None)
])


def _explorer() -> DBExplorer:
    dbx = DBExplorer()
    dbx.register("T", TABLE)
    return dbx


DBX = _explorer()

# identifiers/values chosen to hit both resolving and non-resolving
# names, both type-compatible and incompatible literals
_attrs = st.sampled_from(["cat", "num", "ghost", "CAT"])
_values = st.one_of(
    st.sampled_from(["alpha", "beta", "nope", "it's"]),
    st.floats(min_value=-50, max_value=50, allow_nan=False, width=16),
)


def _leaf() -> st.SearchStrategy[Predicate]:
    return st.one_of(
        st.builds(Eq, _attrs, _values),
        st.builds(Ne, _attrs, _values),
        st.builds(In, _attrs, st.lists(_values, min_size=1, max_size=3)),
        st.builds(
            lambda a, lo, d: Between(a, lo, lo + abs(d)),
            _attrs,
            st.floats(min_value=-50, max_value=50, allow_nan=False,
                      width=16),
            st.floats(min_value=0, max_value=50, allow_nan=False,
                      width=16),
        ),
        st.builds(
            Cmp, _attrs, st.sampled_from(["<", "<=", ">", ">="]),
            st.floats(min_value=-50, max_value=50, allow_nan=False,
                      width=16),
        ),
        st.builds(IsMissing, _attrs),
    )


def _predicates() -> st.SearchStrategy[Predicate]:
    return st.recursive(
        _leaf(),
        lambda children: st.one_of(
            st.builds(lambda a, b: And([a, b]), children, children),
            st.builds(lambda a, b: Or([a, b]), children, children),
            st.builds(Not, children),
        ),
        max_leaves=8,
    )


def _select_sql() -> st.SearchStrategy[str]:
    """SELECT statements via to_sql of generated predicates."""
    tables = st.sampled_from(["T", "Ghost"])
    columns = st.sampled_from(["*", "cat", "num", "cat, num", "wat"])
    return st.builds(
        lambda t, c, p: (
            f"SELECT {c} FROM {t} WHERE {p.to_sql()}"
        ),
        tables, columns, _predicates(),
    )


@given(_select_sql())
@settings(max_examples=150, deadline=None)
def test_analyzer_never_crashes_on_parser_accepted_text(sql):
    """Whatever parses must analyze: a report comes back, no exception."""
    try:
        stmt = parse(sql)
    except ParseError:
        return  # not parser-accepted: out of scope
    report = DBX.analyze(stmt, text=sql)
    assert report.codes() is not None
    report.render()     # rendering must not crash either
    report.as_dict()


@given(_predicates())
@settings(max_examples=150, deadline=None)
def test_analyzer_never_crashes_on_programmatic_statements(pred):
    """Statements built without the parser (no spans) analyze fine."""
    stmt = SelectStatement("T", where=pred)
    report = DBX.analyze(stmt)
    report.render()


@given(_predicates())
@settings(max_examples=100, deadline=None)
def test_clean_selects_execute_without_analysis_error(pred):
    """An ok report is a promise: the gate will not fire on execute."""
    sql = f"SELECT * FROM T WHERE {pred.to_sql()}"
    try:
        stmt = parse(sql)
    except ParseError:
        return
    report = DBX.analyze(stmt, text=sql)
    if not report.ok:
        return
    try:
        DBX.execute(sql)
    except AnalysisError as exc:  # pragma: no cover - the property
        pytest.fail(f"gate fired on an analyzer-clean statement: {exc}")


@given(_predicates())
@settings(max_examples=100, deadline=None)
def test_contradiction_reports_imply_empty_masks(pred):
    """QA301 claims the WHERE matches no row — the mask must agree."""
    stmt = SelectStatement("T", where=pred)
    report = analyze_statement(stmt, engine=DBX.engine)
    error_codes = {d.code for d in report.errors}
    # only when the contradiction is the sole defect is the mask even
    # evaluable — type errors (QA1xx/QA2xx) make mask() raise instead
    if error_codes == {"QA301"}:
        assert not pred.mask(TABLE).any(), pred.to_sql()


@given(st.text(max_size=12), st.text(max_size=12))
@settings(max_examples=200, deadline=None)
def test_levenshtein_symmetry_and_identity(a, b):
    cap = 30
    d_ab = levenshtein(a, b, cap=cap)
    d_ba = levenshtein(b, a, cap=cap)
    assert d_ab == d_ba
    assert levenshtein(a, a, cap=cap) == 0
    if d_ab <= cap:
        assert d_ab <= max(len(a), len(b))
