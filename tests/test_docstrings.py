"""Meta-test: every public item in the library carries a docstring.

Enforces the documentation deliverable mechanically — any new public
module, class, function, or method without a doc comment fails here.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro

EXEMPT_METHOD_NAMES = {
    # dunder/protocol methods whose meaning is the protocol itself
    "__init__", "__len__", "__iter__", "__contains__", "__getitem__",
    "__repr__", "__str__", "__eq__", "__hash__", "__call__",
    "__post_init__", "__and__", "__or__", "__invert__",
}


def _all_modules():
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if info.name.endswith("__main__"):
            continue
        yield importlib.import_module(info.name)


MODULES = list(_all_modules())


@pytest.mark.parametrize(
    "module", MODULES, ids=[m.__name__ for m in MODULES]
)
def test_module_docstring(module):
    assert module.__doc__, f"{module.__name__} lacks a module docstring"


def _public_members(module):
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if getattr(obj, "__module__", None) != module.__name__:
            continue  # re-exports are documented at their home
        if inspect.isclass(obj) or inspect.isfunction(obj):
            yield name, obj


@pytest.mark.parametrize(
    "module", MODULES, ids=[m.__name__ for m in MODULES]
)
def test_public_items_documented(module):
    missing = []
    for name, obj in _public_members(module):
        if not inspect.getdoc(obj):
            missing.append(name)
            continue
        if inspect.isclass(obj):
            for m_name, member in vars(obj).items():
                if m_name.startswith("_") and m_name not in ():
                    continue
                if m_name in EXEMPT_METHOD_NAMES:
                    continue
                func = None
                if inspect.isfunction(member):
                    func = member
                elif isinstance(member, (classmethod, staticmethod)):
                    func = member.__func__
                elif isinstance(member, property):
                    func = member.fget
                if func is not None and not inspect.getdoc(func):
                    missing.append(f"{name}.{m_name}")
    assert not missing, (
        f"{module.__name__}: undocumented public items: {missing}"
    )
