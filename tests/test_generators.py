"""Tests for the dataset generators: scale, schema, and — crucially —
the conditional dependency structure the CAD View is supposed to find."""

import numpy as np
import pytest

from repro.dataset.generators import (
    CAR_CATALOG,
    MUSHROOM_ATTRIBUTES,
    generate_mushroom,
    generate_usedcars,
    mushroom_schema,
    usedcars_schema,
)
from repro.query import Eq, QueryEngine


class TestUsedCarsSchema:
    def test_eleven_attributes(self):
        assert len(usedcars_schema()) == 11

    def test_engine_hidden_by_default(self):
        assert "Engine" in usedcars_schema().hidden_names

    def test_custom_queriable(self):
        s = usedcars_schema(queriable=["Make", "Price"])
        assert s.queriable_names == ("Make", "Price")


class TestUsedCarsGeneration:
    def test_deterministic(self):
        a = generate_usedcars(500, seed=3)
        b = generate_usedcars(500, seed=3)
        assert a == b

    def test_seed_changes_data(self):
        a = generate_usedcars(500, seed=3)
        b = generate_usedcars(500, seed=4)
        assert a != b

    def test_size(self, cars):
        assert len(cars) == 6000

    def test_model_determines_make(self, cars):
        """Model -> Make is a functional dependency of the catalog."""
        by_model = {}
        for row in cars.head(2000).iter_rows():
            by_model.setdefault(row["Model"], set()).add(row["Make"])
        assert all(len(makes) == 1 for makes in by_model.values())

    def test_model_determines_bodytype(self, cars):
        by_model = {}
        for row in cars.head(2000).iter_rows():
            by_model.setdefault(row["Model"], set()).add(row["BodyType"])
        assert all(len(bodies) == 1 for bodies in by_model.values())

    def test_engine_respects_catalog_options(self, cars):
        wranglers = QueryEngine.select(cars, Eq("Model", "Wrangler Unlimited"))
        assert set(wranglers.distinct("Engine")) <= {"V6", "V8"}
        assert set(wranglers.distinct("Drivetrain")) == {"4WD"}

    def test_price_depreciates_with_age(self, cars):
        years = cars["Year"].numbers
        prices = cars["Price"].numbers
        recent = prices[years >= 2012].mean()
        old = prices[years <= 2006].mean()
        assert recent > old * 1.5

    def test_mileage_grows_with_age(self, cars):
        years = cars["Year"].numbers
        miles = cars["Mileage"].numbers
        assert miles[years <= 2006].mean() > miles[years >= 2012].mean()

    def test_v8_thirstier_than_v4(self, cars):
        v8 = QueryEngine.select(cars, Eq("Engine", "V8"))
        v4 = QueryEngine.select(cars, Eq("Engine", "V4"))
        assert v4["FuelEconomy"].numbers.mean() > v8["FuelEconomy"].numbers.mean() + 2

    def test_table1_makes_have_recent_suvs(self, cars):
        """The paper's running example must stay reproducible."""
        for make in ("Chevrolet", "Ford", "Honda", "Toyota", "Jeep"):
            suvs = QueryEngine.select(
                cars, Eq("Make", make) & Eq("BodyType", "SUV")
            )
            assert len(suvs) > 20, make
            assert suvs["Year"].numbers.max() >= 2012, make

    def test_no_missing_values(self, cars):
        for name in cars.schema.names:
            assert cars[name].missing_count() == 0, name

    def test_catalog_positive_prices_and_weights(self):
        for m in CAR_CATALOG:
            assert m.base_price > 0
            assert m.popularity > 0
            assert all(w > 0 for _, w in m.engines)
            assert all(w > 0 for _, w in m.drivetrains)


class TestMushroom:
    def test_schema_has_23_attributes(self):
        assert len(mushroom_schema()) == 23
        assert mushroom_schema().names == MUSHROOM_ATTRIBUTES

    def test_all_categorical(self):
        assert all(a.is_categorical for a in mushroom_schema())

    def test_default_size_is_uci(self):
        # only check the default parameter, not a full 8124-row generation
        import inspect
        from repro.dataset.generators import mushroom

        sig = inspect.signature(mushroom.generate_mushroom)
        assert sig.parameters["n"].default == 8124

    def test_deterministic(self):
        assert generate_mushroom(300, seed=5) == generate_mushroom(300, seed=5)

    def test_class_roughly_balanced(self, mushroom):
        counts = mushroom.value_counts("class")
        frac = counts["edible"] / len(mushroom)
        assert 0.45 < frac < 0.60

    def test_odor_predicts_class(self, mushroom):
        """Foul odor should be almost surely poisonous (UCI-like)."""
        foul = QueryEngine.select(mushroom, Eq("odor", "foul"))
        assert foul.value_counts("class").get("poisonous", 0) == len(foul)

    def test_almond_is_edible(self, mushroom):
        almond = QueryEngine.select(mushroom, Eq("odor", "almond"))
        assert almond.value_counts("class").get("edible", 0) == len(almond)

    def test_chocolate_spores_cooccur_with_foul(self, mushroom):
        """Task 3's alternative condition must exist in the data."""
        choc = QueryEngine.select(
            mushroom, Eq("spore-print-color", "chocolate")
        )
        foul_share = choc.value_counts("odor").get("foul", 0) / len(choc)
        assert foul_share > 0.75

    def test_brown_white_gills_similar(self, mushroom):
        """Task 2's ground truth: brown and white gill colors have
        near-identical class-conditional generation."""
        brown = QueryEngine.select(mushroom, Eq("gill-color", "brown"))
        white = QueryEngine.select(mushroom, Eq("gill-color", "white"))
        b = brown.value_counts("class").get("edible", 0) / len(brown)
        w = white.value_counts("class").get("edible", 0) / len(white)
        assert abs(b - w) < 0.12

    def test_green_gills_poisonous(self, mushroom):
        green = QueryEngine.select(mushroom, Eq("gill-color", "green"))
        assert len(green) > 0
        assert green.value_counts("class").get("poisonous", 0) == len(green)

    def test_veil_type_constant(self, mushroom):
        assert mushroom.distinct("veil-type") == ("partial",)

    def test_no_missing(self, mushroom):
        for name in mushroom.schema.names:
            assert mushroom[name].missing_count() == 0
