"""Shared fixtures: small deterministic datasets and common objects.

Dataset fixtures are session-scoped — generation is the expensive part
of the suite, and every consumer treats tables as immutable.
"""

from __future__ import annotations

import pytest

from repro.dataset import AttrKind, Attribute, Schema, Table
from repro.dataset.generators import generate_mushroom, generate_usedcars


@pytest.fixture(scope="session")
def cars():
    """A 6000-row used-car table (big enough for stable statistics)."""
    return generate_usedcars(6000, seed=7)


@pytest.fixture(scope="session")
def mushroom():
    """A 3000-row mushroom table."""
    return generate_mushroom(3000, seed=13)


@pytest.fixture()
def toy_schema():
    return Schema([
        Attribute("city", AttrKind.CATEGORICAL),
        Attribute("stars", AttrKind.ORDINAL),
        Attribute("price", AttrKind.NUMERIC),
        Attribute("amenity", AttrKind.CATEGORICAL, queriable=False),
    ])


@pytest.fixture()
def toy_table(toy_schema):
    rows = [
        {"city": "Paris", "stars": 5, "price": 400.0, "amenity": "spa"},
        {"city": "Paris", "stars": 4, "price": 250.0, "amenity": "gym"},
        {"city": "Paris", "stars": 3, "price": 120.0, "amenity": "gym"},
        {"city": "Lyon", "stars": 4, "price": 180.0, "amenity": "spa"},
        {"city": "Lyon", "stars": 2, "price": 80.0, "amenity": None},
        {"city": "Nice", "stars": 5, "price": 350.0, "amenity": "pool"},
        {"city": "Nice", "stars": 3, "price": None, "amenity": "pool"},
        {"city": None, "stars": 1, "price": 40.0, "amenity": None},
    ]
    return Table.from_rows(toy_schema, rows)
