"""Pipeline fuzz: random small tables through the full CAD View build.

Whatever (reasonable) table hypothesis generates, the builder must
either raise a library error it documents or produce a structurally
valid CAD View: rows for exactly the present pivot values, candidate
IUnits that partition each pivot partition, consecutive 1-based uids,
and similarity operations that do not crash.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import CADViewBuilder, CADViewConfig, Table
from repro.dataset import AttrKind, Attribute, Schema
from repro.errors import ReproError


@st.composite
def random_table(draw):
    n_rows = draw(st.integers(6, 60))
    n_cat = draw(st.integers(1, 3))
    n_num = draw(st.integers(0, 2))
    attrs = [Attribute("pivot", AttrKind.CATEGORICAL)]
    attrs += [
        Attribute(f"c{i}", AttrKind.CATEGORICAL) for i in range(n_cat)
    ]
    attrs += [Attribute(f"n{i}", AttrKind.NUMERIC) for i in range(n_num)]
    schema = Schema(attrs)

    pivot_card = draw(st.integers(1, 4))
    seed = draw(st.integers(0, 10_000))
    rng = np.random.default_rng(seed)
    rows = []
    for _ in range(n_rows):
        row = {"pivot": f"p{rng.integers(pivot_card)}"}
        for i in range(n_cat):
            # occasional missing values
            if rng.random() < 0.05:
                row[f"c{i}"] = None
            else:
                row[f"c{i}"] = f"v{rng.integers(1, 5)}"
        for i in range(n_num):
            row[f"n{i}"] = (
                None if rng.random() < 0.05
                else float(np.round(rng.normal(0, 10), 2))
            )
        rows.append(row)
    return Table.from_rows(schema, rows)


@given(random_table(), st.integers(1, 4))
@settings(max_examples=40, deadline=None)
def test_build_is_structurally_valid_or_raises_library_error(table, k):
    builder = CADViewBuilder(CADViewConfig(iunits_k=k, seed=0))
    try:
        cad = builder.build(table, pivot="pivot")
    except ReproError:
        return  # a documented failure mode is acceptable

    present = set(table.value_counts("pivot"))
    assert set(cad.pivot_values) == present
    assert 1 <= len(cad.compare_attributes) <= cad.config.compare_limit
    assert "pivot" not in cad.compare_attributes

    for value in cad.pivot_values:
        row = cad.rows[value]
        assert 1 <= len(row) <= k
        assert [u.uid for u in row] == list(range(1, len(row) + 1))
        # candidates partition the pivot value's tuples
        total = sum(u.size for u in cad.candidates[value])
        assert total == table.value_counts("pivot")[value]
        for unit in row:
            assert unit.pivot_value == value
            for attr in cad.compare_attributes:
                dist = np.asarray(unit.distributions[attr])
                assert (dist >= 0).all()
                assert dist.sum() <= unit.size + 1e-9

    # the similarity operations never crash on a valid view
    first = cad.pivot_values[0]
    hits = cad.similar_iunits(first, 1, threshold=0.0)
    assert all(s >= 0.0 for _, s in hits)
    reordered = cad.reorder_by_similarity(first)
    assert reordered.pivot_values[0] == first
    assert set(reordered.pivot_values) == set(cad.pivot_values)
