"""Unit tests for encodings, k-means, k-modes and quality measures."""

import numpy as np
import pytest

from repro.clustering import (
    KMeans, KModes, davies_bouldin, inertia, one_hot_encode,
    silhouette_score,
)
from repro.discretize import Discretizer
from repro.errors import QueryError


@pytest.fixture()
def toy_view(toy_table):
    return Discretizer(nbins=3).fit(toy_table)


class TestOneHotEncode:
    def test_shape(self, toy_view, toy_table):
        enc = one_hot_encode(toy_view, ["city", "price"])
        assert enc.matrix.shape[0] == len(toy_table)
        assert enc.matrix.shape[1] == (
            toy_view.ncodes("city") + toy_view.ncodes("price")
        )

    def test_one_hot_rows_sum(self, toy_view):
        enc = one_hot_encode(toy_view, ["city"], scale=False)
        sums = enc.matrix.sum(axis=1)
        # one 1 per row except the missing-city row
        assert sorted(sums) == [0.0] + [1.0] * 7

    def test_scaling_distance_one_per_attribute(self, toy_view):
        enc = one_hot_encode(toy_view, ["city"])
        # two rows with different cities are at squared distance 1
        x, y = enc.matrix[0], enc.matrix[3]  # Paris vs Lyon
        assert float(((x - y) ** 2).sum()) == pytest.approx(1.0)

    def test_column_of(self, toy_view):
        enc = one_hot_encode(toy_view, ["city", "price"])
        col = enc.column_of("price", 1)
        assert col == enc.offsets["price"] + 1
        with pytest.raises(QueryError):
            enc.column_of("city", 99)
        with pytest.raises(QueryError):
            enc.column_of("bogus", 0)

    def test_block_slicing(self, toy_view):
        enc = one_hot_encode(toy_view, ["city", "price"])
        centers = np.ones((2, enc.matrix.shape[1]))
        block = enc.block(centers, "city")
        assert block.shape == (2, toy_view.ncodes("city"))

    def test_empty_names_raises(self, toy_view):
        with pytest.raises(QueryError):
            one_hot_encode(toy_view, [])


def blobs(seed=0, n=100):
    rng = np.random.default_rng(seed)
    return np.vstack([
        rng.normal([0, 0], 0.3, (n, 2)),
        rng.normal([5, 5], 0.3, (n, 2)),
        rng.normal([0, 5], 0.3, (n, 2)),
    ])


class TestKMeans:
    def test_recovers_blobs(self):
        X = blobs()
        res = KMeans(3, seed=1).fit(X)
        sizes = sorted(res.cluster_sizes())
        assert sizes == [100, 100, 100]

    def test_labels_match_centers(self):
        X = blobs()
        res = KMeans(3, seed=1).fit(X)
        d = ((X[:, None, :] - res.centers[None]) ** 2).sum(axis=2)
        assert np.array_equal(res.labels, d.argmin(axis=1))

    def test_inertia_decreases_with_k(self):
        X = blobs()
        inertias = [KMeans(k, seed=2).fit(X).inertia for k in (1, 3, 6)]
        assert inertias[0] > inertias[1] > inertias[2]

    def test_fewer_points_than_clusters(self):
        X = np.array([[0.0, 0.0], [1.0, 1.0]])
        with pytest.warns(UserWarning, match="clamping"):
            res = KMeans(5, seed=0).fit(X)
        assert res.k == 2

    def test_duplicate_points(self):
        X = np.zeros((10, 3))
        res = KMeans(3, seed=0).fit(X)
        assert res.inertia == pytest.approx(0.0)

    def test_empty_raises(self):
        with pytest.raises(QueryError):
            KMeans(2).fit(np.empty((0, 2)))

    def test_one_dim_input_raises(self):
        with pytest.raises(QueryError):
            KMeans(2).fit(np.array([1.0, 2.0]))

    def test_bad_k_raises(self):
        with pytest.raises(QueryError):
            KMeans(0)

    def test_deterministic_given_seed(self):
        X = blobs()
        a = KMeans(3, seed=7).fit(X)
        b = KMeans(3, seed=7).fit(X)
        assert np.array_equal(a.labels, b.labels)

    def test_runs_more_than_one_iteration(self):
        res = KMeans(4, seed=3).fit(blobs(seed=5))
        assert res.n_iter >= 2


class TestKModes:
    def test_recovers_categorical_blocks(self):
        rng = np.random.default_rng(0)
        a = np.tile([0, 0, 0], (60, 1))
        b = np.tile([1, 1, 1], (60, 1))
        X = np.vstack([a, b])
        noise = rng.integers(0, 2, X.shape) > 0.9
        res = KModes(2, seed=1).fit(X)
        assert sorted(res.cluster_sizes()) == [60, 60]

    def test_modes_are_valid_codes(self):
        rng = np.random.default_rng(1)
        X = rng.integers(0, 4, (100, 5)).astype(np.int32)
        res = KModes(3, seed=2).fit(X)
        assert res.modes.min() >= 0
        assert res.modes.max() < 4

    def test_missing_never_matches(self):
        X = np.array([[-1], [-1], [0], [0]], dtype=np.int32)
        res = KModes(2, seed=0).fit(X)
        # the two missing rows each mismatch everything, cost >= 2
        assert res.cost >= 2

    def test_cost_zero_on_identical(self):
        X = np.tile([2, 3], (10, 1)).astype(np.int32)
        res = KModes(1, seed=0).fit(X)
        assert res.cost == 0.0

    def test_empty_raises(self):
        with pytest.raises(QueryError):
            KModes(2).fit(np.empty((0, 3), dtype=np.int32))


class TestQuality:
    def test_inertia_matches_kmeans(self):
        X = blobs()
        res = KMeans(3, seed=1).fit(X)
        assert inertia(X, res.labels, res.centers) == pytest.approx(
            res.inertia, rel=1e-9
        )

    def test_silhouette_high_for_separated(self):
        X = blobs()
        res = KMeans(3, seed=1).fit(X)
        assert silhouette_score(X, res.labels) > 0.8

    def test_silhouette_low_for_random_labels(self):
        X = blobs()
        rng = np.random.default_rng(0)
        labels = rng.integers(0, 3, len(X))
        assert silhouette_score(X, labels) < 0.1

    def test_silhouette_needs_two_clusters(self):
        X = blobs()
        with pytest.raises(QueryError):
            silhouette_score(X, np.zeros(len(X), dtype=int))

    def test_silhouette_sampling(self):
        X = blobs(n=400)
        res = KMeans(3, seed=1).fit(X)
        full = silhouette_score(X, res.labels, sample=None)
        sampled = silhouette_score(X, res.labels, sample=300)
        assert abs(full - sampled) < 0.1

    def test_davies_bouldin_lower_for_separated(self):
        X = blobs()
        good = KMeans(3, seed=1).fit(X)
        rng = np.random.default_rng(0)
        bad_labels = rng.integers(0, 3, len(X)).astype(np.int32)
        bad_centers = np.vstack([
            X[bad_labels == c].mean(axis=0) for c in range(3)
        ])
        assert davies_bouldin(X, good.labels, good.centers) < davies_bouldin(
            X, bad_labels, bad_centers
        )

    def test_davies_bouldin_needs_two_clusters(self):
        X = blobs()
        with pytest.raises(QueryError):
            davies_bouldin(X, np.zeros(len(X), dtype=int), X[:1])


class TestClampWarning:
    """n_clusters > n_samples: clamp to singletons with a warning."""

    def test_kmeans_warns_and_clamps(self):
        X = np.array([[0.0, 0.0], [1.0, 1.0]])
        with pytest.warns(UserWarning, match="clamping"):
            res = KMeans(5, seed=0).fit(X)
        assert res.k == 2
        assert sorted(res.cluster_sizes()) == [1, 1]

    def test_kmodes_warns_and_clamps(self):
        X = np.array([[0, 1], [1, 0], [2, 2]], dtype=np.int32)
        with pytest.warns(UserWarning, match="clamping"):
            res = KModes(7, seed=0).fit(X)
        assert res.k == 3

    def test_no_warning_when_k_fits(self, recwarn):
        X = np.arange(20, dtype=float).reshape(10, 2)
        KMeans(3, seed=0).fit(X)
        assert not [w for w in recwarn if "clamping" in str(w.message)]


class TestCheckpoint:
    """The budget hook: called every iteration, exceptions propagate."""

    def test_kmeans_calls_checkpoint_each_iteration(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(60, 3))
        calls = []
        KMeans(3, seed=0).fit(X, checkpoint=lambda: calls.append(1))
        assert len(calls) >= 1

    def test_kmeans_checkpoint_exception_propagates(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(60, 3))

        def boom():
            raise TimeoutError("deadline")

        with pytest.raises(TimeoutError):
            KMeans(3, seed=0).fit(X, checkpoint=boom)

    def test_kmodes_checkpoint_exception_propagates(self):
        rng = np.random.default_rng(1)
        X = rng.integers(0, 4, (50, 4)).astype(np.int32)

        def boom():
            raise TimeoutError("deadline")

        with pytest.raises(TimeoutError):
            KModes(3, seed=0).fit(X, checkpoint=boom)
