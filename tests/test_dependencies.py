"""Unit tests for FD/correlation discovery (CORDS-style)."""

import pytest

from repro.dataset import AttrKind, Attribute, Schema, Table
from repro.discretize import Discretizer
from repro.errors import QueryError
from repro.features import (
    correlation_pairs, discover_dependencies, fd_strength,
)


@pytest.fixture()
def fd_table():
    schema = Schema([
        Attribute("code", AttrKind.CATEGORICAL),
        Attribute("country", AttrKind.CATEGORICAL),
        Attribute("noise", AttrKind.CATEGORICAL),
    ])
    rows = []
    mapping = {"FR": "France", "DE": "Germany", "IT": "Italy"}
    for i in range(120):
        code = ["FR", "DE", "IT"][i % 3]
        rows.append({
            "code": code,
            "country": mapping[code],
            "noise": str(i % 7),
        })
    return Table.from_rows(schema, rows)


class TestFdStrength:
    def test_exact_fd(self, fd_table):
        view = Discretizer().fit(fd_table)
        strength, support = fd_strength(view, "code", "country")
        assert strength == 1.0
        assert support == 120

    def test_reverse_also_exact_here(self, fd_table):
        view = Discretizer().fit(fd_table)
        strength, _ = fd_strength(view, "country", "code")
        assert strength == 1.0

    def test_independent_attributes_weak(self, fd_table):
        view = Discretizer().fit(fd_table)
        strength, _ = fd_strength(view, "noise", "code")
        assert strength < 0.7

    def test_soft_fd(self):
        schema = Schema([
            Attribute("x", AttrKind.CATEGORICAL),
            Attribute("y", AttrKind.CATEGORICAL),
        ])
        rows = [{"x": "a", "y": "1"}] * 95 + [{"x": "a", "y": "2"}] * 5
        view = Discretizer().fit(Table.from_rows(schema, rows))
        strength, _ = fd_strength(view, "x", "y")
        assert strength == pytest.approx(0.95)


class TestDiscoverDependencies:
    def test_finds_exact_fds(self, fd_table):
        deps = discover_dependencies(fd_table, threshold=0.999, sample=None)
        pairs = {(d.determinant, d.dependent) for d in deps}
        assert ("code", "country") in pairs
        assert ("country", "code") in pairs
        assert all(d.exact for d in deps
                   if (d.determinant, d.dependent) in pairs)

    def test_noise_not_reported(self, fd_table):
        deps = discover_dependencies(fd_table, threshold=0.999, sample=None)
        assert not any(d.determinant == "noise" for d in deps)

    def test_usedcars_model_determines_make(self, cars):
        deps = discover_dependencies(cars, threshold=0.999, sample=2000)
        pairs = {(d.determinant, d.dependent) for d in deps}
        assert ("Model", "Make") in pairs
        assert ("Model", "BodyType") in pairs

    def test_threshold_validation(self, fd_table):
        with pytest.raises(QueryError):
            discover_dependencies(fd_table, threshold=0.0)

    def test_sorted_by_strength(self, cars):
        deps = discover_dependencies(cars, threshold=0.9, sample=1500)
        strengths = [d.strength for d in deps]
        assert strengths == sorted(strengths, reverse=True)

    def test_str(self, fd_table):
        deps = discover_dependencies(fd_table, threshold=0.999, sample=None)
        assert "->" in str(deps[0])


class TestCorrelationPairs:
    def test_fd_pair_has_v_one(self, fd_table):
        pairs = correlation_pairs(fd_table, sample=None)
        top = pairs[0]
        assert {top[0], top[1]} == {"code", "country"}
        assert top[2] == pytest.approx(1.0)

    def test_all_pairs_covered(self, fd_table):
        pairs = correlation_pairs(fd_table, sample=None)
        assert len(pairs) == 3  # C(3,2)

    def test_values_in_unit_interval(self, cars):
        for _, _, v in correlation_pairs(cars, sample=1500):
            assert 0.0 <= v <= 1.0 + 1e-9

    def test_attribute_subset(self, cars):
        pairs = correlation_pairs(
            cars, sample=1000, attributes=["Make", "Model", "Price"]
        )
        assert len(pairs) == 3
