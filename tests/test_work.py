"""Deterministic work counters: taxonomy, isolation, byte-identity.

The byte-identity tests drive the real CLI (``main()``) over a small
canned workload and compare the ``work`` payloads across sequential
replay, concurrency 1, concurrency 8, and two worker subprocesses —
the determinism contract the benchmark gate relies on.
"""

from __future__ import annotations

import json
import threading
from pathlib import Path

import pytest

from repro.cli import EXIT_OK, main
from repro.obs import work
from repro.obs.tracer import Tracer

NBA_LOG = str(
    Path(__file__).parent.parent
    / "examples" / "session_nba.worklog.jsonl"
)

SQLS = [
    "SELECT Make FROM data",
    "SELECT Price FROM data WHERE BodyType = SUV",
    "CREATE CADVIEW v AS SET pivot = Make SELECT Price FROM data "
    "LIMIT COLUMNS 3 IUNITS 2",
    "SHOW CADVIEWS",
    "SELECT Mileage FROM data WHERE Price > 5",
]


def _workload(tmp_path, rows=400):
    path = tmp_path / "wl.jsonl"
    lines = [json.dumps(
        {"kind": "session", "dataset": "usedcars", "rows": rows, "seed": 7}
    )]
    for sql in SQLS:
        lines.append(json.dumps(
            {"kind": "statement", "statement": sql,
             "statement_kind": "select"}
        ))
    path.write_text("\n".join(lines) + "\n")
    return str(path)


class TestTaxonomy:
    def test_names_are_prefixed_and_unique(self):
        assert len(set(work.WORK_COUNTERS)) == len(work.WORK_COUNTERS)
        assert all(n.startswith("work.") for n in work.WORK_COUNTERS)

    def test_unknown_counter_rejected(self):
        with pytest.raises(ValueError, match="unknown work counter"):
            work.add("work.bogus.thing")

    def test_add_outside_context_is_safe(self):
        assert work.current() is None
        work.add("work.query.rows_scanned", 3)  # registry only, no crash

    def test_nonpositive_increments_ignored(self):
        with work.track() as counters:
            work.add("work.query.rows_scanned", 0)
            work.add("work.query.rows_scanned", -5)
        assert counters.as_dict() == {}

    def test_as_dict_is_taxonomy_ordered(self):
        with work.track() as counters:
            work.add("work.diversify.astar_expanded", 1)
            work.add("work.query.rows_scanned", 2)
        assert list(counters.as_dict()) == [
            "work.query.rows_scanned", "work.diversify.astar_expanded",
        ]


class TestContextIsolation:
    def test_threads_get_private_accumulators(self):
        results = {}

        def run(tag):
            with work.track() as counters:
                work.add("work.query.rows_scanned", 10 + tag)
                results[tag] = counters.as_dict()

        threads = [
            threading.Thread(target=run, args=(i,)) for i in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        for i in range(4):
            assert results[i] == {"work.query.rows_scanned": 10 + i}

    def test_track_restores_previous_context(self):
        with work.track() as outer:
            work.add("work.cluster.iterations", 1)
            with work.track() as inner:
                work.add("work.cluster.iterations", 5)
            work.add("work.cluster.iterations", 1)
        assert outer.as_dict() == {"work.cluster.iterations": 2}
        assert inner.as_dict() == {"work.cluster.iterations": 5}

    def test_counts_roll_up_to_innermost_open_span(self):
        tracer = Tracer("t")
        with work.track(tracer):
            with tracer.span("phase") as span:
                work.add("work.cluster.iterations", 2)
        assert span.counters["work.cluster.iterations"] == 2

    def test_attach_redirects_span_rollup(self):
        late = Tracer("late")
        with work.track() as counters:
            work.attach(late)
            with late.span("phase") as span:
                work.add("work.cluster.reseeds", 3)
        assert span.counters["work.cluster.reseeds"] == 3
        assert counters.as_dict() == {"work.cluster.reseeds": 3}


class TestKernelCounts:
    def test_query_engine_counts_rows_and_predicates(self, capsys):
        rc = main([
            "cadview", "--rows", "300",
            "--sql", "SELECT Make FROM data WHERE Price > 5",
        ])
        assert rc == EXIT_OK

    def test_explain_analyze_renders_work_block(self, capsys):
        def explain():
            rc = main([
                "cadview", "--rows", "300", "--sql",
                "EXPLAIN ANALYZE SELECT Make FROM data WHERE Price > 5",
            ])
            assert rc == EXIT_OK
            out = capsys.readouterr().out
            start = out.index("work counters:")
            return out[start:]

        first, second = explain(), explain()
        assert "work.query.rows_scanned = 300" in first
        assert "work.query.predicate_evals = 300" in first
        # deterministic: byte-identical across two identical runs
        assert first == second


class TestByteIdentity:
    """The determinism contract: same counts at any concurrency."""

    def _replay_work(self, capsys, path, *extra):
        rc = main(["replay", path, "--json", *extra])
        assert rc == EXIT_OK
        payload = json.loads(capsys.readouterr().out)
        per_statement = [
            (r["index"], r.get("work"))
            for r in payload.get("results", [])
        ]
        return payload["work"]["totals"], sorted(per_statement)

    def test_sequential_equals_concurrent(self, tmp_path, capsys):
        path = _workload(tmp_path)
        seq_totals, _ = self._replay_work(capsys, path)
        c1_totals, c1 = self._replay_work(
            capsys, path, "--concurrency", "1"
        )
        c8_totals, c8 = self._replay_work(
            capsys, path, "--concurrency", "8"
        )
        assert seq_totals == c1_totals == c8_totals
        assert c1 == c8
        assert seq_totals  # non-empty: the kernels really counted

    def test_procs_equals_threads(self, tmp_path, capsys):
        path = _workload(tmp_path)
        c1_totals, c1 = self._replay_work(
            capsys, path, "--concurrency", "1"
        )
        rc = main([
            "serve", path, "--stress", "--procs", "2",
            "--queue-limit", "64", "--json",
        ])
        assert rc == EXIT_OK
        payload = json.loads(capsys.readouterr().out)
        p2 = sorted(
            (r["index"], r.get("work")) for r in payload["results"]
        )
        assert payload["work"]["totals"] == c1_totals
        assert p2 == c1

    def test_canned_nba_session_identical_across_modes(
        self, tmp_path, capsys
    ):
        """The acceptance-criteria workload: the committed NBA session."""
        c1_totals, c1 = self._replay_work(
            capsys, NBA_LOG, "--rows", "1000", "--concurrency", "1"
        )
        c8_totals, c8 = self._replay_work(
            capsys, NBA_LOG, "--rows", "1000", "--concurrency", "8"
        )
        rc = main([
            "serve", NBA_LOG, "--stress", "--rows", "1000",
            "--procs", "2", "--queue-limit", "64", "--json",
        ])
        assert rc == EXIT_OK
        payload = json.loads(capsys.readouterr().out)
        p2 = sorted(
            (r["index"], r.get("work")) for r in payload["results"]
        )
        assert c1_totals == c8_totals == payload["work"]["totals"]
        assert c1 == c8 == p2
        assert c1_totals["work.cluster.distance_evals"] > 0

    def test_sequential_replay_reports_work_by_kind(self, tmp_path, capsys):
        path = _workload(tmp_path)
        rc = main(["replay", path, "--json"])
        assert rc == EXIT_OK
        payload = json.loads(capsys.readouterr().out)
        by_kind = payload["work"]["by_kind"]
        assert "select" in by_kind
        totals = {}
        for counts in by_kind.values():
            for name, count in counts.items():
                totals[name] = totals.get(name, 0) + count
        assert totals == payload["work"]["totals"]

    def test_worklog_records_carry_work(self, tmp_path, capsys):
        path = _workload(tmp_path)
        out_log = tmp_path / "out.jsonl"
        rc = main(["replay", path, "--worklog", str(out_log)])
        assert rc == EXIT_OK
        records = [
            json.loads(line)
            for line in out_log.read_text().splitlines()
        ]
        stmt = [r for r in records if r.get("kind") == "statement"]
        assert stmt and any(r.get("work") for r in stmt)
        scans = [
            r["work"].get("work.query.rows_scanned")
            for r in stmt if r.get("work")
        ]
        assert 400 in scans
