"""Tests for the cross-process telemetry plane.

Covers the wire form (`span_to_wire`/`epoch_anchor`), the supervisor's
`TelemetryHub` (ingestion, relabeling, bounds, drop accounting), the
stitched Chrome trace exporter (validated with the same stdlib checker
CI uses), and the declarative SLO layer (spec parsing, evaluation,
burn accounting).
"""

from __future__ import annotations

import importlib.util
import json
import time
from pathlib import Path

import pytest

from repro.obs.hub import (
    TelemetryHub,
    to_stitched_chrome_trace,
    write_stitched_chrome_trace,
)
from repro.obs.metrics import MetricsRegistry, hist_mean, hist_quantile
from repro.obs.slo import (
    SLOError,
    evaluate_slos,
    parse_slos,
)
from repro.obs.tracer import Span, epoch_anchor, span_to_wire


def _load_check_trace():
    """Import benchmarks/check_trace.py (not an installed package)."""
    path = Path(__file__).parent.parent / "benchmarks" / "check_trace.py"
    spec = importlib.util.spec_from_file_location("check_trace", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _worker_payload(
    shard=0, incarnation=0, pid=4242, dropped=0,
    metrics=None, spans=None, events=None,
):
    return {
        "shard": shard,
        "incarnation": incarnation,
        "pid": pid,
        "seq": 1,
        "dropped": dropped,
        "metrics": metrics if metrics is not None else {
            "counters": {"worker.statements.ok": 3.0},
            "gauges": {},
            "histograms": {},
        },
        "spans": spans or [],
        "events": events or [],
    }


def _wire_tree(name="worker.request", request_id="r-1", start=1000.0,
               dur=0.5, children=()):
    return {
        "name": name,
        "bucket": None,
        "status": "ok",
        "error": None,
        "start_ts": start,
        "end_ts": start + dur,
        "attrs": {"request_id": request_id},
        "counters": {},
        "events": [],
        "children": list(children),
    }


class TestWireForm:
    def test_epoch_anchor_maps_perf_counter_to_epoch(self):
        anchor = epoch_anchor()
        now = anchor + time.perf_counter()
        assert abs(now - time.time()) < 1.0

    def test_span_to_wire_carries_absolute_timestamps(self):
        span = Span("build", request_id="r-9")
        child = Span("cluster")
        child.close()
        span.children.append(child)
        span.inc("cells", 7)
        span.close()
        wire = span_to_wire(span, anchor=1000.0)
        assert wire["name"] == "build"
        assert wire["start_ts"] == pytest.approx(1000.0 + span.start_s)
        assert wire["end_ts"] >= wire["start_ts"]
        assert wire["attrs"]["request_id"] == "r-9"
        assert wire["counters"]["cells"] == 7
        assert wire["children"][0]["name"] == "cluster"

    def test_non_scalar_attrs_are_stringified(self):
        span = Span("x", weird=object())
        span.close()
        wire = span_to_wire(span, anchor=0.0)
        assert isinstance(wire["attrs"]["weird"], str)
        json.dumps(wire)  # the whole wire form must be JSON-able


class TestTelemetryHub:
    def test_ingest_tracks_workers_and_frames(self):
        hub = TelemetryHub()
        hub.ingest(0, 0, _worker_payload(shard=0, pid=100))
        hub.ingest(1, 0, _worker_payload(shard=1, pid=101))
        stats = hub.stats()
        assert stats["frames"] == 2
        assert stats["workers_seen"] == 2
        assert stats["dropped_total"] == 0
        assert hub.incarnations() == [(0, 0), (1, 0)]

    def test_cluster_registry_relabels_per_incarnation(self):
        sup = MetricsRegistry()
        sup.counter("proc.s0.completed").inc(5)
        hub = TelemetryHub(metrics=sup)
        hub.ingest(0, 0, _worker_payload(shard=0))
        hub.ingest(0, 2, _worker_payload(shard=0, incarnation=2))
        snap = hub.cluster_registry().snapshot()
        counters = snap["counters"]
        assert counters["proc.s0.completed"] == 5.0
        assert counters["proc.s0.g0.worker.statements.ok"] == 3.0
        assert counters["proc.s0.g2.worker.statements.ok"] == 3.0
        # drop counters present even at zero: "no drops" must be
        # distinguishable from "not counting"
        assert counters["proc.telemetry.dropped"] == 0.0
        assert counters["proc.telemetry.hub_dropped"] == 0.0
        assert counters["proc.telemetry.frames_merged"] == 2.0

    def test_latest_cumulative_snapshot_wins(self):
        hub = TelemetryHub()
        hub.ingest(0, 0, _worker_payload(metrics={
            "counters": {"worker.statements.ok": 2.0},
            "gauges": {}, "histograms": {},
        }))
        hub.ingest(0, 0, _worker_payload(metrics={
            "counters": {"worker.statements.ok": 6.0},
            "gauges": {}, "histograms": {},
        }))
        snap = hub.cluster_registry().snapshot()
        # cumulative, not summed: 6, never 8
        assert snap["counters"]["proc.s0.g0.worker.statements.ok"] == 6.0

    def test_worker_dropped_merges_by_max(self):
        hub = TelemetryHub()
        hub.ingest(0, 0, _worker_payload(dropped=5))
        hub.ingest(0, 0, _worker_payload(dropped=3))  # out-of-order frame
        assert hub.stats()["worker_drops"] == 5.0

    def test_span_tree_bound_drops_and_counts(self):
        hub = TelemetryHub(max_span_trees=2)
        hub.ingest(0, 0, _worker_payload(
            spans=[_wire_tree(request_id=f"r-{i}") for i in range(5)]
        ))
        stats = hub.stats()
        assert stats["span_trees"] == 2
        assert stats["hub_span_drops"] == 3
        assert stats["dropped_total"] == 3

    def test_event_bound_drops_and_counts(self):
        hub = TelemetryHub(max_events=1)
        hub.record_event("worker.spawn", shard=0)
        hub.record_event("worker.death", shard=0)
        assert hub.stats()["events"] == 1
        assert hub.stats()["hub_event_drops"] == 1

    def test_malformed_payload_never_raises(self):
        hub = TelemetryHub()
        hub.ingest(0, 0, {
            "pid": "not-an-int", "dropped": -3, "metrics": 42,
            "spans": "nonsense", "events": [None, 7],
        })
        stats = hub.stats()
        assert stats["frames"] == 1
        assert stats["span_trees"] == 0
        assert stats["worker_drops"] == 0.0

    def test_span_trees_are_tagged_with_provenance(self):
        hub = TelemetryHub()
        hub.ingest(1, 2, _worker_payload(
            shard=1, incarnation=2, pid=777, spans=[_wire_tree()]
        ))
        (entry,) = hub.span_trees()
        assert (entry["shard"], entry["incarnation"], entry["pid"]) == \
            (1, 2, 777)
        assert entry["tree"]["name"] == "worker.request"


class TestStitchedTrace:
    def _hub_with_worker(self, pid=4242):
        hub = TelemetryHub()
        hub.ingest(0, 0, _worker_payload(pid=pid, spans=[
            _wire_tree(request_id="r-1", start=1000.2),
            _wire_tree(name="worker.startup", request_id="r-0",
                       start=1000.0),
        ]))
        return hub

    def test_one_lane_per_process_with_names(self):
        anchor = 1000.0  # pretend perf_counter 0 == epoch 1000
        root = Span("serve.session")
        req = Span("serve.request", request_id="r-1", shard=0,
                   incarnation=0)
        req.close()
        root.children.append(req)
        root.close()
        hub = self._hub_with_worker()
        trace = to_stitched_chrome_trace(
            root, hub.span_trees(), supervisor_pid=1, anchor=anchor
        )
        events = trace["traceEvents"]
        metas = {e["pid"]: e["args"]["name"]
                 for e in events if e["ph"] == "M"}
        assert metas[1].startswith("supervisor")
        assert metas[4242] == "worker s0 g0 (pid 4242)"
        assert all(e["ts"] >= 0 for e in events)
        names = {e["name"] for e in events}
        assert {"serve.request", "worker.request", "worker.startup"} \
            <= names

    def test_synthetic_pid_for_unknown_worker(self):
        hub = TelemetryHub()
        hub.ingest(2, 3, _worker_payload(
            shard=2, incarnation=3, pid=None, spans=[_wire_tree()]
        ))
        trace = to_stitched_chrome_trace(
            None, hub.span_trees(), supervisor_pid=1, anchor=0.0
        )
        pids = {e["pid"] for e in trace["traceEvents"] if e["ph"] == "X"}
        assert pids == {1_000_000 + 2 * 1_000 + 3}

    def test_written_trace_passes_the_ci_validator(self, tmp_path):
        anchor = 1000.0
        root = Span("serve.session")
        req = Span("serve.request", request_id="r-1")
        req.close()
        root.children.append(req)
        root.close()
        hub = self._hub_with_worker()
        path = tmp_path / "stitched.json"
        write_stitched_chrome_trace(
            str(path), root, hub.span_trees(),
            supervisor_pid=1, anchor=anchor,
        )
        checker = _load_check_trace()
        assert checker.validate_trace(str(path), stitched=True) == []

    def test_validator_rejects_orphan_worker_spans(self, tmp_path):
        hub = TelemetryHub()
        hub.ingest(0, 0, _worker_payload(spans=[
            _wire_tree(request_id="r-orphan")
        ]))
        root = Span("serve.session")
        root.close()
        path = tmp_path / "orphan.json"
        write_stitched_chrome_trace(
            str(path), root, hub.span_trees(),
            supervisor_pid=1, anchor=1000.0,
        )
        checker = _load_check_trace()
        problems = checker.validate_trace(str(path), stitched=True)
        assert any("no matching serve.request" in p for p in problems)

    def test_validator_rejects_single_process_trace(self, tmp_path):
        root = Span("serve.session")
        root.close()
        path = tmp_path / "solo.json"
        write_stitched_chrome_trace(
            str(path), root, [], supervisor_pid=1, anchor=1000.0
        )
        checker = _load_check_trace()
        problems = checker.validate_trace(str(path), stitched=True)
        assert any("expected >= 2" in p for p in problems)


class TestSLOParsing:
    def test_parses_spec_list(self):
        objectives = parse_slos("view:p95_ms<=500, *:error_rate<=0.05")
        assert [(o.kind, o.metric, o.threshold) for o in objectives] == \
            [("view", "p95_ms", 500.0), ("*", "error_rate", 0.05)]

    @pytest.mark.parametrize("spec", [
        "nonsense",
        "view:p97_ms<=500",          # unknown metric
        "view:error_rate<=0.1",      # error_rate must be scoped '*'
        "view:p95_ms<=0",            # threshold must be positive
        "",                          # empty spec
    ])
    def test_rejects_bad_specs(self, spec):
        with pytest.raises(SLOError):
            parse_slos(spec)


class TestSLOEvaluation:
    def _snapshot(self, latencies_by_kind, statuses):
        reg = MetricsRegistry()
        for kind, values in latencies_by_kind.items():
            hist = reg.histogram(f"serve.latency.{kind}")
            for v in values:
                hist.observe(v)
        for status, n in statuses.items():
            reg.counter(f"serve.statements.{status}").inc(n)
        return reg.snapshot()

    def test_error_rate_counts_non_ok_statuses(self):
        snap = self._snapshot({}, {"ok": 8, "degraded": 1, "failed": 1})
        report = evaluate_slos(parse_slos("*:error_rate<=0.2"), snap)
        (result,) = report.results
        # degraded counts as success: 1 bad of 10
        assert result.observed == pytest.approx(0.1)
        assert result.ok
        assert result.burn == pytest.approx(0.5)
        assert result.samples == 10

    def test_latency_objective_fails_when_exceeded(self):
        snap = self._snapshot({"view": [5.0] * 10}, {"ok": 10})
        report = evaluate_slos(parse_slos("view:p95_ms<=100"), snap)
        (result,) = report.results
        assert not result.ok
        assert not report.ok
        assert result.burn is not None and result.burn > 1.0

    def test_fast_latencies_pass(self):
        snap = self._snapshot({"view": [0.001] * 20}, {"ok": 20})
        report = evaluate_slos(
            parse_slos("view:p99_ms<=500,*:mean_ms<=500"), snap
        )
        assert report.ok
        assert report.evaluated == 2

    def test_unmatched_kind_skips_without_failing(self):
        snap = self._snapshot({"view": [0.001]}, {"ok": 1})
        report = evaluate_slos(parse_slos("select:p95_ms<=10"), snap)
        (result,) = report.results
        assert result.observed is None
        assert result.ok
        assert report.ok
        assert report.evaluated == 0
        assert "SKIP" in result.line()

    def test_star_kind_merges_all_latency_histograms(self):
        snap = self._snapshot(
            {"view": [0.001] * 5, "select": [0.002] * 5}, {"ok": 10}
        )
        report = evaluate_slos(parse_slos("*:p50_ms<=100"), snap)
        (result,) = report.results
        assert result.samples == 10

    def test_replay_prefixes_are_pluggable(self):
        reg = MetricsRegistry()
        reg.histogram("replay.latency.select").observe(0.001)
        reg.counter("replay.statements.ok").inc(1)
        report = evaluate_slos(
            parse_slos("*:error_rate<=0.5,select:p95_ms<=100"),
            reg.snapshot(),
            latency_prefix="replay.latency.",
            status_prefix="replay.statements.",
        )
        assert report.ok
        assert report.evaluated == 2

    def test_report_renders_and_dumps(self):
        snap = self._snapshot({"view": [0.001]}, {"ok": 1})
        report = evaluate_slos(parse_slos("view:p95_ms<=100"), snap)
        assert "SLO check: PASS" in report.render()
        dumped = report.as_dict()
        assert dumped["ok"] is True
        assert dumped["objectives"][0]["metric"] == "p95_ms"


class TestHistogramHelpers:
    def test_quantile_and_mean(self):
        reg = MetricsRegistry()
        hist = reg.histogram("h")
        for v in [0.001] * 9 + [10.0]:
            hist.observe(v)
        dump = reg.snapshot()["histograms"]["h"]
        assert hist_quantile(dump, 0.5) <= 0.01
        assert hist_mean(dump) == pytest.approx(1.0009, rel=0.01)

    def test_quantile_of_empty_dump_is_zero(self):
        assert hist_quantile({"bounds": [], "counts": [], "count": 0},
                             0.99) == 0.0
