"""Determinism tests for concurrent workload replay (repro.serve.stress).

The contract under test: replaying the committed example session at
``--concurrency 8`` produces byte-identical per-statement results —
status, degradation rungs, IUnit contents — to ``--concurrency 1``,
both on a clean run and under fault injection (``REPRO_FAULTS``-style
plans), because results depend only on the statement's position in the
log, never on worker interleaving.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.core import DBExplorer
from repro.dataset.generators import generate_usedcars
from repro.obs.worklog import NO_WORKLOG, read_worklog
from repro.robustness import FaultInjector
from repro.serve import replay_concurrent, statement_scopes
from repro.serve.stress import ALL_VIEWS

EXAMPLE_LOG = (
    Path(__file__).parent.parent
    / "examples" / "session_nba.worklog.jsonl"
)


@pytest.fixture(scope="module")
def records():
    return read_worklog(str(EXAMPLE_LOG))


@pytest.fixture(scope="module")
def cars():
    # smaller than the session header's 10k rows: both runs share the
    # table, so digests stay comparable and the test stays fast
    return generate_usedcars(1_000, seed=7)


def _replay(records, cars, concurrency, faults=None):
    dbx = DBExplorer(worklog=NO_WORKLOG, faults=faults)
    dbx.register("data", cars)
    return replay_concurrent(records, dbx, concurrency=concurrency)


class TestStatementScopes:
    def test_select_has_no_view_scope(self):
        reads, writes = statement_scopes(
            "SELECT Make FROM data LIMIT 5"
        )
        assert reads == frozenset() and writes == frozenset()

    def test_create_writes_the_view(self):
        _, writes = statement_scopes(
            "CREATE CADVIEW suvs AS SET pivot = Make "
            "SELECT Price FROM data WHERE BodyType = SUV"
        )
        assert writes == frozenset({"suvs"})

    def test_drop_reads_the_whole_catalog(self):
        # DROP returns the remaining catalog listing, so it must order
        # after every other create/drop, not just its own view's
        reads, writes = statement_scopes("DROP CADVIEW suvs")
        assert ALL_VIEWS in reads
        assert writes == frozenset({"suvs"})

    def test_show_reads_the_whole_catalog(self):
        reads, writes = statement_scopes("SHOW CADVIEWS")
        assert ALL_VIEWS in reads and writes == frozenset()

    def test_reorder_reads_and_writes_its_view(self):
        reads, writes = statement_scopes(
            "REORDER ROWS IN suvs ORDER BY SIMILARITY(Ford) DESC"
        )
        assert reads == frozenset({"suvs"})
        assert writes == frozenset({"suvs"})

    def test_highlight_only_reads(self):
        reads, writes = statement_scopes(
            "HIGHLIGHT SIMILAR IUNITS IN suvs "
            "WHERE SIMILARITY(Ford, 1) > 0.5"
        )
        assert reads == frozenset({"suvs"})
        assert writes == frozenset()

    def test_unparsable_text_has_empty_scope(self):
        assert statement_scopes("SELEC nonsense") == (
            frozenset(), frozenset()
        )


class TestConcurrentReplayDeterminism:
    def test_concurrency_8_matches_sequential_clean(self, records, cars):
        baseline = _replay(records, cars, concurrency=1)
        report = _replay(records, cars, concurrency=8)
        assert len(baseline.results) == 17
        assert baseline.mismatches(report) == []
        # the analyzer-rejected SELECT from the captured session fails
        # identically in both runs; everything else completes
        assert report.statuses.get("analysis_error") == 1
        assert report.outcomes.get("failed") == 1

    def test_concurrency_8_matches_sequential_under_faults(
        self, records, cars
    ):
        plan = "cluster=convergence*1,serve.slow_worker=crash*1"
        baseline = _replay(
            records, cars, concurrency=1,
            faults=FaultInjector.parse(plan),
        )
        report = _replay(
            records, cars, concurrency=8,
            faults=FaultInjector.parse(plan),
        )
        assert baseline.mismatches(report) == []

    def test_mismatches_reports_divergence(self, records, cars):
        # different tables genuinely change result digests — the
        # mismatch detector must say so, per statement
        small = generate_usedcars(500, seed=7)
        a = _replay(records, cars, concurrency=2)
        b = _replay(records, small, concurrency=2)
        diverged = a.mismatches(b)
        assert diverged
        assert all(ours != theirs for _, ours, theirs in diverged)

    def test_report_shape(self, records, cars):
        report = _replay(records, cars, concurrency=4)
        dumped = report.as_dict()
        assert dumped["concurrency"] == 4
        assert dumped["statements"] == len(report.results)
        assert set(report.outcomes) <= {
            "ok", "degraded", "rejected", "failed"
        }
        text = report.render()
        assert "concurrent replay" in text
        for res in report.results:
            assert res.digest in text
