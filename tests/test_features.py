"""Unit tests for contingency tables, chi-square, and feature selection."""

import numpy as np
import pytest

from repro.discretize import Discretizer
from repro.errors import QueryError
from repro.features import (
    ChiSquareSelector,
    MutualInformationSelector,
    SymmetricUncertaintySelector,
    chi2_sf,
    chi_square_test,
    contingency_table,
    cramers_v,
    marginals,
    select_compare_attributes,
)
from repro.query import QueryEngine, parse_predicate


class TestContingency:
    def test_basic_counts(self):
        cls = np.array([0, 0, 1, 1, 1])
        val = np.array([0, 1, 0, 1, 1])
        t = contingency_table(cls, val, 2, 2)
        assert t.tolist() == [[1, 1], [1, 2]]

    def test_missing_dropped(self):
        cls = np.array([0, -1, 1])
        val = np.array([0, 0, -1])
        t = contingency_table(cls, val, 2, 1)
        assert t.sum() == 1

    def test_length_mismatch(self):
        with pytest.raises(QueryError):
            contingency_table(np.array([0]), np.array([0, 1]), 1, 2)

    def test_marginals(self):
        t = np.array([[1.0, 2.0], [3.0, 4.0]])
        rows, cols, total = marginals(t)
        assert rows.tolist() == [3.0, 7.0]
        assert cols.tolist() == [4.0, 6.0]
        assert total == 10.0


class TestChi2SF:
    def test_known_values(self):
        # chi2.sf(3.841, 1) ~ 0.05
        assert chi2_sf(3.841, 1) == pytest.approx(0.05, abs=1e-3)
        assert chi2_sf(0.0, 5) == 1.0
        assert chi2_sf(100.0, 1) < 1e-20

    def test_monotone_in_x(self):
        assert chi2_sf(1.0, 2) > chi2_sf(2.0, 2) > chi2_sf(5.0, 2)

    def test_bad_df(self):
        with pytest.raises(QueryError):
            chi2_sf(1.0, 0)


class TestChiSquareTest:
    def test_independent_table(self):
        t = np.array([[50.0, 50.0], [50.0, 50.0]])
        r = chi_square_test(t)
        assert r.statistic == pytest.approx(0.0)
        assert r.p_value == pytest.approx(1.0)
        assert not r.significant()

    def test_dependent_table(self):
        t = np.array([[90.0, 10.0], [10.0, 90.0]])
        r = chi_square_test(t)
        assert r.statistic > 100
        assert r.significant(0.01)

    def test_textbook_value(self):
        # 2x2 with chi2 = N(ad-bc)^2 / (row/col products)
        t = np.array([[10.0, 20.0], [20.0, 10.0]])
        expected = 60 * (10 * 10 - 20 * 20) ** 2 / (30 * 30 * 30 * 30)
        assert chi_square_test(t).statistic == pytest.approx(expected)

    def test_df(self):
        t = np.ones((3, 4))
        assert chi_square_test(t).df == 6

    def test_zero_rows_dropped(self):
        t = np.array([[10.0, 5.0], [0.0, 0.0], [5.0, 10.0]])
        assert chi_square_test(t).df == 1

    def test_degenerate_table(self):
        t = np.array([[5.0, 5.0]])
        r = chi_square_test(t)
        assert r.statistic == 0.0 and r.p_value == 1.0


class TestCramersV:
    def test_perfect_association(self):
        t = np.array([[50.0, 0.0], [0.0, 50.0]])
        assert cramers_v(t) == pytest.approx(1.0)

    def test_independence(self):
        t = np.array([[25.0, 25.0], [25.0, 25.0]])
        assert cramers_v(t) == pytest.approx(0.0)

    def test_range(self):
        rng = np.random.default_rng(0)
        for _ in range(5):
            t = rng.integers(1, 50, (3, 4)).astype(float)
            assert 0.0 <= cramers_v(t) <= 1.0


@pytest.fixture(scope="module")
def cars_view(cars):
    return Discretizer(nbins=6).fit(cars)


class TestSelectors:
    def test_rank_sorted_desc(self, cars_view):
        ranks = ChiSquareSelector().rank(cars_view, "Make")
        scores = [r.score for r in ranks]
        assert scores == sorted(scores, reverse=True)

    def test_pivot_excluded(self, cars_view):
        ranks = ChiSquareSelector().rank(cars_view, "Make")
        assert all(r.attribute != "Make" for r in ranks)

    def test_model_most_informative_for_make(self, cars_view):
        """Model functionally determines Make, so it must rank first."""
        ranks = ChiSquareSelector().rank(cars_view, "Make")
        assert ranks[0].attribute == "Model"
        assert ranks[0].p_value < 1e-10

    def test_paper_anecdote_model_beats_mileage_for_year(self, cars_view):
        names = [
            r.attribute for r in ChiSquareSelector().rank(cars_view, "Year")
        ]
        assert names.index("Model") < names.index("Mileage")

    def test_unknown_pivot(self, cars_view):
        with pytest.raises(QueryError):
            ChiSquareSelector().rank(cars_view, "bogus")

    def test_selectors_agree_on_functional_dependency(self, cars_view):
        for selector in (
            MutualInformationSelector(), SymmetricUncertaintySelector(),
        ):
            ranks = selector.rank(cars_view, "Make")
            assert ranks[0].attribute == "Model", type(selector).__name__

    def test_mi_bounds(self, cars_view):
        for r in MutualInformationSelector().rank(cars_view, "Make"):
            assert r.score >= 0.0

    def test_su_bounded_by_one(self, cars_view):
        for r in SymmetricUncertaintySelector().rank(cars_view, "Make"):
            assert 0.0 <= r.score <= 1.0 + 1e-9

    def test_candidates_subset(self, cars_view):
        ranks = ChiSquareSelector().rank(
            cars_view, "Make", candidates=["Price", "Color"]
        )
        assert {r.attribute for r in ranks} == {"Price", "Color"}


class TestSelectCompareAttributes:
    def test_pinned_first(self, cars_view):
        chosen = select_compare_attributes(
            cars_view, "Make", pinned=["Price"], limit=5
        )
        assert chosen[0] == "Price"
        assert len(chosen) == 5

    def test_limit_respected(self, cars_view):
        assert len(
            select_compare_attributes(cars_view, "Make", limit=3)
        ) == 3

    def test_exclude(self, cars_view):
        chosen = select_compare_attributes(
            cars_view, "Make", limit=5, exclude=["Model"]
        )
        assert "Model" not in chosen

    def test_relevance_gate(self, cars):
        """Attributes independent of the pivot are not auto-selected."""
        pred = parse_predicate("BodyType = SUV")
        r = QueryEngine.select(cars, pred)
        view = Discretizer(nbins=6).fit(r)
        chosen = select_compare_attributes(view, "Make", limit=10, alpha=0.01)
        # BodyType is constant in R: zero contrast, never selected
        assert "BodyType" not in chosen

    def test_bad_limit(self, cars_view):
        with pytest.raises(QueryError):
            select_compare_attributes(cars_view, "Make", limit=0)

    def test_unknown_pinned(self, cars_view):
        with pytest.raises(QueryError):
            select_compare_attributes(cars_view, "Make", pinned=["bogus"])

    def test_pinned_deduplicated(self, cars_view):
        chosen = select_compare_attributes(
            cars_view, "Make", pinned=["Price", "Price"], limit=3
        )
        assert chosen.count("Price") == 1
