"""Edge cases exercised end-to-end: tiny tables, degenerate domains,
missing data, and deep pipelines on unusual inputs."""

import numpy as np
import pytest

from repro import (
    CADViewBuilder, CADViewConfig, DBExplorer, Table,
)
from repro.dataset import AttrKind, Attribute, Schema
from repro.discretize import Discretizer
from repro.errors import CADViewError, EmptyResultError
from repro.facets import FacetedEngine, TPFacetSession


def tiny_table(n=12, seed=0):
    schema = Schema([
        Attribute("group", AttrKind.CATEGORICAL),
        Attribute("color", AttrKind.CATEGORICAL),
        Attribute("value", AttrKind.NUMERIC),
    ])
    rng = np.random.default_rng(seed)
    rows = [
        {
            "group": "a" if i % 2 == 0 else "b",
            "color": ["red", "blue", "green"][i % 3],
            "value": float(rng.integers(0, 100)),
        }
        for i in range(n)
    ]
    return Table.from_rows(schema, rows)


class TestTinyTables:
    def test_cadview_on_12_rows(self):
        cad = CADViewBuilder(CADViewConfig(iunits_k=2, seed=0)).build(
            tiny_table(), pivot="group"
        )
        assert set(cad.pivot_values) == {"a", "b"}
        for v in cad.pivot_values:
            assert 1 <= len(cad.rows[v]) <= 2

    def test_cadview_single_row_per_value(self):
        schema = Schema([
            Attribute("g", AttrKind.CATEGORICAL),
            Attribute("x", AttrKind.CATEGORICAL),
        ])
        t = Table.from_rows(schema, [
            {"g": "a", "x": "1"}, {"g": "b", "x": "2"},
        ])
        cad = CADViewBuilder(CADViewConfig(iunits_k=3, seed=0)).build(
            t, pivot="g"
        )
        for v in cad.pivot_values:
            assert len(cad.rows[v]) == 1
            assert cad.rows[v][0].size == 1

    def test_two_attribute_table(self):
        schema = Schema([
            Attribute("g", AttrKind.CATEGORICAL),
            Attribute("x", AttrKind.NUMERIC),
        ])
        t = Table.from_rows(schema, [
            {"g": ["a", "b"][i % 2], "x": float(i)} for i in range(30)
        ])
        cad = CADViewBuilder(CADViewConfig(seed=0)).build(t, pivot="g")
        assert cad.compare_attributes == ("x",)


class TestDegenerateDomains:
    def test_constant_numeric_attribute(self):
        schema = Schema([
            Attribute("g", AttrKind.CATEGORICAL),
            Attribute("x", AttrKind.NUMERIC),
            Attribute("y", AttrKind.NUMERIC),
        ])
        t = Table.from_rows(schema, [
            {"g": ["a", "b"][i % 2], "x": 5.0, "y": float(i % 7)}
            for i in range(40)
        ])
        cad = CADViewBuilder(CADViewConfig(seed=0)).build(t, pivot="g")
        # x is constant: its label domain is a single bin everywhere
        assert cad.view.ncodes("x") == 1

    def test_missing_heavy_column(self):
        schema = Schema([
            Attribute("g", AttrKind.CATEGORICAL),
            Attribute("x", AttrKind.CATEGORICAL),
            Attribute("mostly_missing", AttrKind.NUMERIC),
        ])
        rows = [
            {
                "g": ["a", "b"][i % 2],
                "x": ["u", "v", "w"][i % 3],
                "mostly_missing": 1.0 if i == 0 else None,
            }
            for i in range(40)
        ]
        t = Table.from_rows(schema, rows)
        cad = CADViewBuilder(CADViewConfig(seed=0)).build(t, pivot="g")
        assert cad.pivot_values == ("a", "b")

    def test_all_missing_numeric_column_discretizes(self):
        schema = Schema([
            Attribute("g", AttrKind.CATEGORICAL),
            Attribute("x", AttrKind.NUMERIC),
        ])
        t = Table.from_rows(schema, [
            {"g": "a", "x": None}, {"g": "b", "x": None},
        ])
        view = Discretizer().fit(t)
        assert view.ncodes("x") == 0
        assert (view.codes("x") == -1).all()


class TestFacetsEdges:
    def test_empty_result_digest(self, mushroom):
        engine = FacetedEngine(mushroom)
        d = engine.digest({"odor": {"foul"}, "class": {"edible"}})
        assert d.total == 0
        assert d.values("class") == {}

    def test_tpfacet_pivot_value_all_one_cluster(self, mushroom):
        engine = FacetedEngine(mushroom)
        s = TPFacetSession(engine, CADViewConfig(seed=1, iunits_k=3))
        s.toggle("odor", "creosote")  # a rare value: small partition
        s.set_pivot("class")
        cad = s.cadview()
        assert len(cad.pivot_values) >= 1

    def test_explorer_cadview_over_empty_result(self, mushroom):
        dbx = DBExplorer()
        dbx.register("m", mushroom)
        with pytest.raises(EmptyResultError):
            dbx.execute(
                "CREATE CADVIEW x AS SET pivot = class SELECT * FROM m "
                "WHERE odor = foul AND class = edible"
            )


class TestUnicodeAndQuoting:
    def test_quoted_values_with_spaces_and_accents(self):
        schema = Schema([
            Attribute("g", AttrKind.CATEGORICAL),
            Attribute("name", AttrKind.CATEGORICAL),
        ])
        t = Table.from_rows(schema, [
            {"g": "a", "name": "Citroën C4"},
            {"g": "b", "name": "Škoda Octavia"},
        ] * 10)
        dbx = DBExplorer()
        dbx.register("t", t)
        r = dbx.execute("SELECT * FROM t WHERE name = 'Citroën C4'")
        assert len(r) == 10

    def test_csv_roundtrip_unicode(self, tmp_path):
        schema = Schema([Attribute("name", AttrKind.CATEGORICAL)])
        t = Table.from_rows(schema, [{"name": "żółć, \"quoted\""}])
        path = str(tmp_path / "u.csv")
        t.to_csv(path)
        assert Table.from_csv(path, schema) == t
