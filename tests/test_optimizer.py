"""Tests for the Sec. 6.3 optimization policies and the build profile."""

import pytest

from repro.core import BuildProfile, CADViewBuilder, CADViewConfig
from repro.core.optimizer import (
    CLUSTER_SAMPLE_CAP,
    FS_SAMPLE_CAP,
    optimization_ladder,
    recommended_config,
)
from repro.query import QueryEngine, parse_predicate


class TestRecommendedConfig:
    def test_small_results_stay_exact(self):
        cfg = recommended_config(CADViewConfig(), 2_000)
        assert cfg.fs_sample is None
        assert cfg.cluster_sample is None
        assert cfg.adaptive_l

    def test_large_results_sampled(self):
        cfg = recommended_config(CADViewConfig(), 40_000)
        assert cfg.fs_sample == FS_SAMPLE_CAP
        assert cfg.cluster_sample == CLUSTER_SAMPLE_CAP
        assert cfg.adaptive_l

    def test_base_untouched(self):
        base = CADViewConfig()
        recommended_config(base, 40_000)
        assert base.fs_sample is None


class TestOptimizationLadder:
    def test_four_steps_monotone(self):
        steps = list(optimization_ladder(CADViewConfig()))
        names = [n for n, _ in steps]
        assert names == ["naive", "fs_sampling", "fs+cluster_sampling", "all"]
        assert steps[0][1].fs_sample is None
        assert steps[-1][1].adaptive_l


class TestOptimizedBuildEquivalence:
    def test_sampling_preserves_top_compare_attribute(self, cars):
        """Optimization 1's stability claim (paper Sec. 6.3)."""
        pred = parse_predicate("BodyType = SUV")
        result = QueryEngine.select(cars, pred)
        base = CADViewConfig(seed=0)
        exact = CADViewBuilder(base).build(result, "Make",
                                           exclude=("BodyType",))
        fast = CADViewBuilder(
            base.with_(fs_sample=1_000)
        ).build(result, "Make", exclude=("BodyType",))
        assert exact.compare_attributes[0] == fast.compare_attributes[0]
        # and the sets broadly agree
        overlap = set(exact.compare_attributes) & set(fast.compare_attributes)
        assert len(overlap) >= len(exact.compare_attributes) - 1


class TestBuildProfile:
    def test_buckets_accumulate(self):
        p = BuildProfile()
        with p.timed("compare_attrs"):
            pass
        with p.timed("iunits"):
            pass
        with p.timed("others"):
            pass
        with p.timed("custom_phase"):
            pass
        assert p.compare_attrs_s >= 0
        # unknown buckets land in the explicit time/ namespace so they
        # can never collide with count/ entries
        assert "time/custom_phase" in p.extra
        assert "custom_phase" not in p.extra
        assert p.total_s == pytest.approx(
            p.compare_attrs_s + p.iunits_s + p.others_s
        )

    def test_counts_namespaced(self):
        p = BuildProfile()
        p.count("retries")
        p.count("retries", 2)
        p.record("retries", 0.5)  # a *time* bucket of the same name
        assert p.extra["count/retries"] == 3
        assert p.extra["time/retries"] == pytest.approx(0.5)

    def test_as_dict_and_str(self):
        p = BuildProfile(compare_attrs_s=0.1, iunits_s=0.2, others_s=0.3)
        d = p.as_dict()
        assert d["total_s"] == pytest.approx(0.6)
        assert "total=" in str(p)

    def test_timed_reraises(self):
        p = BuildProfile()
        with pytest.raises(ValueError):
            with p.timed("iunits"):
                raise ValueError("boom")
        assert p.iunits_s >= 0  # still recorded
