"""Property-based tests of the parser: generated predicates round-trip
through ``to_sql`` and evaluate identically."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dataset import AttrKind, Attribute, Schema, Table
from repro.query import parse_predicate
from repro.query.predicates import (
    And, Between, Cmp, Eq, In, IsMissing, Ne, Not, Or, Predicate,
)

SCHEMA = Schema([
    Attribute("cat", AttrKind.CATEGORICAL),
    Attribute("num", AttrKind.NUMERIC),
])

TABLE = Table.from_rows(SCHEMA, [
    {"cat": c, "num": n}
    for c in ("alpha", "beta", "gamma", None)
    for n in (0.0, 1.5, 7.0, 42.0, None)
])

_cat_values = st.sampled_from(["alpha", "beta", "gamma", "it's"])
_num_values = st.floats(min_value=-100, max_value=100, allow_nan=False,
                        width=16)


def _leaf() -> st.SearchStrategy[Predicate]:
    return st.one_of(
        st.builds(Eq, st.just("cat"), _cat_values),
        st.builds(Ne, st.just("cat"), _cat_values),
        st.builds(
            In, st.just("cat"),
            st.lists(_cat_values, min_size=1, max_size=3),
        ),
        st.builds(Eq, st.just("num"), _num_values),
        st.builds(
            lambda lo, d: Between("num", lo, lo + abs(d)),
            _num_values, _num_values,
        ),
        st.builds(Cmp, st.just("num"), st.sampled_from(["<", "<=", ">", ">="]),
                  _num_values),
        st.builds(IsMissing, st.sampled_from(["cat", "num"])),
    )


def _predicates() -> st.SearchStrategy[Predicate]:
    return st.recursive(
        _leaf(),
        lambda children: st.one_of(
            st.builds(lambda a, b: And([a, b]), children, children),
            st.builds(lambda a, b: Or([a, b]), children, children),
            st.builds(Not, children),
        ),
        max_leaves=8,
    )


@given(_predicates())
@settings(max_examples=150)
def test_roundtrip_parse_of_to_sql(pred):
    """parse_predicate(p.to_sql()) evaluates exactly like p."""
    text = pred.to_sql()
    reparsed = parse_predicate(text)
    assert np.array_equal(reparsed.mask(TABLE), pred.mask(TABLE)), text


@given(_predicates())
@settings(max_examples=100)
def test_to_sql_stable_under_reparse(pred):
    """to_sql is a fixed point after one round of parsing."""
    once = parse_predicate(pred.to_sql()).to_sql()
    twice = parse_predicate(once).to_sql()
    assert once == twice


@given(_predicates())
@settings(max_examples=100)
def test_double_negation(pred):
    lhs = Not(Not(pred)).mask(TABLE)
    assert np.array_equal(lhs, pred.mask(TABLE))


@given(_predicates(), _predicates())
@settings(max_examples=100)
def test_and_or_absorption(p, q):
    """p AND (p OR q) == p on every table."""
    lhs = And([p, Or([p, q])]).mask(TABLE)
    assert np.array_equal(lhs, p.mask(TABLE))


@given(_predicates())
@settings(max_examples=100)
def test_mask_is_pure(pred):
    a = pred.mask(TABLE)
    b = pred.mask(TABLE)
    assert np.array_equal(a, b)
    assert a.dtype == bool and a.shape == (len(TABLE),)
