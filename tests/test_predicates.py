"""Unit tests for the predicate algebra."""

import numpy as np
import pytest

from repro.query import (
    And, Between, Cmp, Eq, In, IsMissing, Ne, Not, Or, TruePred,
)
from repro.errors import QueryError, TypeMismatchError


def rows(table, pred):
    return [i for i, v in enumerate(pred.mask(table)) if v]


class TestLeaves:
    def test_true_pred(self, toy_table):
        assert rows(toy_table, TruePred()) == list(range(8))

    def test_eq_categorical(self, toy_table):
        assert rows(toy_table, Eq("city", "Lyon")) == [3, 4]

    def test_eq_unknown_value_matches_nothing(self, toy_table):
        assert rows(toy_table, Eq("city", "Atlantis")) == []

    def test_eq_numeric(self, toy_table):
        assert rows(toy_table, Eq("stars", 5)) == [0, 5]

    def test_eq_numeric_with_text_raises(self, toy_table):
        with pytest.raises(TypeMismatchError):
            Eq("price", "cheap").mask(toy_table)

    def test_ne_excludes_missing(self, toy_table):
        # row 7 has missing city; Ne must not match it
        got = rows(toy_table, Ne("city", "Paris"))
        assert got == [3, 4, 5, 6]

    def test_in_categorical(self, toy_table):
        assert rows(toy_table, In("city", ["Lyon", "Nice"])) == [3, 4, 5, 6]

    def test_in_numeric(self, toy_table):
        assert rows(toy_table, In("stars", [1, 2])) == [4, 7]

    def test_in_empty_raises(self):
        with pytest.raises(QueryError):
            In("city", [])

    def test_in_all_unknown_matches_nothing(self, toy_table):
        assert rows(toy_table, In("city", ["X", "Y"])) == []

    def test_between_inclusive(self, toy_table):
        assert rows(toy_table, Between("stars", 4, 5)) == [0, 1, 3, 5]

    def test_between_reversed_raises(self):
        with pytest.raises(QueryError):
            Between("stars", 5, 4)

    def test_between_missing_excluded(self, toy_table):
        got = rows(toy_table, Between("price", 0, 1000))
        assert 6 not in got  # missing price

    def test_cmp_operators(self, toy_table):
        assert rows(toy_table, Cmp("stars", ">=", 5)) == [0, 5]
        assert rows(toy_table, Cmp("stars", "<", 2)) == [7]
        assert rows(toy_table, Cmp("price", ">", 300)) == [0, 5]
        assert rows(toy_table, Cmp("price", "<=", 80)) == [4, 7]

    def test_cmp_bad_operator(self):
        with pytest.raises(QueryError):
            Cmp("stars", "~", 1)

    def test_is_missing(self, toy_table):
        assert rows(toy_table, IsMissing("city")) == [7]
        assert rows(toy_table, IsMissing("price")) == [6]


class TestComposition:
    def test_and(self, toy_table):
        p = Eq("city", "Paris") & Cmp("stars", ">=", 4)
        assert rows(toy_table, p) == [0, 1]

    def test_or(self, toy_table):
        p = Eq("city", "Nice") | Eq("stars", 1)
        assert rows(toy_table, p) == [5, 6, 7]

    def test_not(self, toy_table):
        p = ~Eq("city", "Paris")
        assert rows(toy_table, p) == [3, 4, 5, 6, 7]

    def test_and_flattens(self):
        p = And([And([Eq("a", 1), Eq("b", 2)]), Eq("c", 3)])
        assert len(p.children) == 3

    def test_or_flattens(self):
        p = Or([Or([Eq("a", 1), Eq("b", 2)]), Eq("c", 3)])
        assert len(p.children) == 3

    def test_and_drops_true(self):
        p = And([TruePred(), Eq("a", 1)])
        assert len(p.children) == 1

    def test_empty_and_is_true(self, toy_table):
        assert And([]).mask(toy_table).all()

    def test_empty_or_raises(self):
        with pytest.raises(QueryError):
            Or([])

    def test_de_morgan(self, toy_table):
        a, b = Eq("city", "Paris"), Cmp("stars", ">=", 4)
        lhs = (~(a & b)).mask(toy_table)
        rhs = ((~a) | (~b)).mask(toy_table)
        assert np.array_equal(lhs, rhs)


class TestSerialization:
    def test_eq_quotes_strings(self):
        assert Eq("city", "O'Hare").to_sql() == "city = 'O''Hare'"

    def test_numbers_render_bare(self):
        assert Eq("stars", 5.0).to_sql() == "stars = 5"
        assert Between("price", 10.5, 20.0).to_sql() == (
            "price BETWEEN 10.5 AND 20"
        )

    def test_and_or_parenthesization(self):
        p = And([Eq("a", 1), Or([Eq("b", 2), Eq("c", 3)])])
        assert p.to_sql() == "a = 1 AND (b = 2 OR c = 3)"

    def test_attributes_dedup_in_order(self):
        p = And([Eq("b", 1), Eq("a", 2), Eq("b", 3)])
        assert p.attributes() == ("b", "a")

    def test_equality_by_sql(self):
        assert Eq("a", 1) == Eq("a", 1)
        assert Eq("a", 1) != Eq("a", 2)
        assert hash(Eq("a", 1)) == hash(Eq("a", 1))
