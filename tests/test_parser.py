"""Unit tests for the SQL/CADVIEW parser."""

import pytest

from repro.errors import ParseError
from repro.query import (
    Between, CreateCadViewStatement, Eq, HighlightSimilarStatement, In,
    ReorderRowsStatement, SelectStatement, parse, parse_predicate,
)
from repro.query.parser import tokenize


class TestTokenizer:
    def test_k_suffix(self):
        toks = tokenize("10K 2.5k 3M")
        assert [t.value for t in toks] == [10_000.0, 2_500.0, 3_000_000.0]

    def test_string_escapes(self):
        (tok,) = tokenize("'O''Hare'")
        assert tok.value == "O'Hare"

    def test_keywords_case_insensitive(self):
        toks = tokenize("select From WHERE")
        assert [t.value for t in toks] == ["SELECT", "FROM", "WHERE"]

    def test_identifiers_keep_case(self):
        (tok,) = tokenize("BodyType")
        assert tok.kind == "ident" and tok.value == "BodyType"

    def test_junk_raises(self):
        with pytest.raises(ParseError):
            tokenize("a @ b")

    def test_operators(self):
        toks = tokenize("<> != <= >= = < >")
        assert [t.value for t in toks] == ["<>", "!=", "<=", ">=", "=", "<", ">"]


class TestPredicateParsing:
    def test_bare_identifier_is_string(self):
        p = parse_predicate("Transmission = Automatic")
        assert p == Eq("Transmission", "Automatic")

    def test_quoted_string(self):
        p = parse_predicate("Model = 'Escape XLT'")
        assert p == Eq("Model", "Escape XLT")

    def test_between_with_k(self):
        p = parse_predicate("Mileage BETWEEN 10K AND 30K")
        assert p == Between("Mileage", 10_000, 30_000)

    def test_in_list(self):
        p = parse_predicate("Make IN (Jeep, Toyota)")
        assert p == In("Make", ["Jeep", "Toyota"])

    def test_precedence_and_binds_tighter(self):
        p = parse_predicate("a = 1 OR b = 2 AND c = 3")
        assert p.to_sql() == "a = 1 OR (b = 2 AND c = 3)"

    def test_parentheses(self):
        p = parse_predicate("(a = 1 OR b = 2) AND c = 3")
        assert p.to_sql() == "(a = 1 OR b = 2) AND c = 3"

    def test_not(self):
        p = parse_predicate("NOT a = 1")
        assert p.to_sql() == "NOT (a = 1)"

    def test_is_null_and_not_null(self):
        assert parse_predicate("a IS NULL").to_sql() == "a IS NULL"
        assert parse_predicate("a IS NOT NULL").to_sql() == "NOT (a IS NULL)"

    def test_comparisons(self):
        assert parse_predicate("Price >= 5K").to_sql() == "Price >= 5000"
        assert parse_predicate("a <> b").to_sql() == "a <> 'b'"

    def test_trailing_junk_raises(self):
        with pytest.raises(ParseError):
            parse_predicate("a = 1 b")

    def test_roundtrip_through_to_sql(self):
        text = "Mileage BETWEEN 10000 AND 30000 AND (Make = 'Jeep' OR Make = 'Ford')"
        p = parse_predicate(text)
        assert parse_predicate(p.to_sql()) == p


class TestSelectStatement:
    def test_star(self):
        stmt = parse("SELECT * FROM D")
        assert isinstance(stmt, SelectStatement)
        assert stmt.columns == () and stmt.table == "D"

    def test_columns_where_order_limit(self):
        stmt = parse(
            "SELECT a, b FROM D WHERE a = 1 ORDER BY b DESC, a LIMIT 10"
        )
        assert stmt.columns == ("a", "b")
        assert stmt.where == Eq("a", 1)
        assert stmt.order_by[0].attribute == "b"
        assert not stmt.order_by[0].ascending
        assert stmt.order_by[1].ascending
        assert stmt.limit == 10

    def test_semicolon_ok(self):
        assert isinstance(parse("SELECT * FROM D;"), SelectStatement)

    def test_trailing_input_raises(self):
        with pytest.raises(ParseError):
            parse("SELECT * FROM D garbage")


class TestCadViewStatement:
    PAPER = """
        CREATE CADVIEW CompareMakes AS
        SET pivot = Make
        SELECT Price
        FROM UsedCars
        WHERE Mileage BETWEEN 10K AND 30K AND
        Transmission = Automatic AND BodyType = SUV AND
        (Make = Jeep OR Make = Toyota OR Make = Honda OR
        Make = Ford OR Make = Chevrolet)
        LIMIT COLUMNS 5 IUNITS 3
    """

    def test_paper_example_verbatim(self):
        stmt = parse(self.PAPER)
        assert isinstance(stmt, CreateCadViewStatement)
        assert stmt.name == "CompareMakes"
        assert stmt.pivot == "Make"
        assert stmt.select == ("Price",)
        assert stmt.table == "UsedCars"
        assert stmt.limit_columns == 5
        assert stmt.iunits == 3

    def test_minimal(self):
        stmt = parse("CREATE CADVIEW v AS SET pivot = a SELECT * FROM t")
        assert stmt.select == ()
        assert stmt.limit_columns is None and stmt.iunits is None

    def test_order_by(self):
        stmt = parse(
            "CREATE CADVIEW v AS SET pivot = a SELECT * FROM t "
            "ORDER BY Price ASC"
        )
        assert stmt.order_by[0].attribute == "Price"

    def test_missing_pivot_raises(self):
        with pytest.raises(ParseError):
            parse("CREATE CADVIEW v AS SELECT * FROM t")


class TestSimilarityStatements:
    def test_highlight(self):
        stmt = parse(
            "HIGHLIGHT SIMILAR IUNITS IN CompareMakes "
            "WHERE SIMILARITY(Chevrolet, 3) > 3.5"
        )
        assert isinstance(stmt, HighlightSimilarStatement)
        assert stmt.view == "CompareMakes"
        assert stmt.pivot_value == "Chevrolet"
        assert stmt.iunit_id == 3
        assert stmt.threshold == 3.5

    def test_highlight_quoted_value(self):
        stmt = parse(
            "HIGHLIGHT SIMILAR IUNITS IN v WHERE SIMILARITY('Escape XLT', 1) >= 2"
        )
        assert stmt.pivot_value == "Escape XLT"

    def test_reorder(self):
        stmt = parse(
            "REORDER ROWS IN CompareMakes ORDER BY SIMILARITY(Chevrolet) DESC"
        )
        assert isinstance(stmt, ReorderRowsStatement)
        assert stmt.pivot_value == "Chevrolet"
        assert stmt.descending

    def test_reorder_asc(self):
        stmt = parse("REORDER ROWS IN v ORDER BY SIMILARITY(x) ASC")
        assert not stmt.descending

    def test_wrong_arity_raises(self):
        with pytest.raises(ParseError):
            parse("HIGHLIGHT SIMILAR IUNITS IN v WHERE SIMILARITY(a) > 1")


class TestErrors:
    def test_empty_statement(self):
        with pytest.raises(ParseError):
            parse("")

    def test_unsupported_statement(self):
        with pytest.raises(ParseError):
            parse("DELETE FROM t")

    def test_error_carries_position(self):
        try:
            parse_predicate("a = ")
        except ParseError as e:
            assert "end of statement" in str(e)
        else:
            pytest.fail("expected ParseError")


class TestPositiveIntGuards:
    """LIMIT COLUMNS / IUNITS must be whole numbers >= 1."""

    def test_limit_columns_zero_rejected(self):
        with pytest.raises(ParseError, match="LIMIT COLUMNS.*>= 1"):
            parse("CREATE CADVIEW v AS SET pivot = a SELECT * FROM t "
                  "LIMIT COLUMNS 0")

    def test_iunits_zero_rejected(self):
        with pytest.raises(ParseError, match="IUNITS.*>= 1"):
            parse("CREATE CADVIEW v AS SET pivot = a SELECT * FROM t "
                  "IUNITS 0")

    def test_negative_rejected(self):
        with pytest.raises(ParseError, match=">= 1"):
            parse("CREATE CADVIEW v AS SET pivot = a SELECT * FROM t "
                  "LIMIT COLUMNS -3")

    def test_fractional_rejected(self):
        with pytest.raises(ParseError, match="whole number"):
            parse("CREATE CADVIEW v AS SET pivot = a SELECT * FROM t "
                  "IUNITS 2.5")

    def test_one_is_fine(self):
        stmt = parse("CREATE CADVIEW v AS SET pivot = a SELECT * FROM t "
                     "LIMIT COLUMNS 1 IUNITS 1")
        assert stmt.limit_columns == 1 and stmt.iunits == 1
