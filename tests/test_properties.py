"""Property-based tests (hypothesis) on core data structures/invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from itertools import combinations

from repro.dataset import AttrKind, Attribute
from repro.dataset.column import Column
from repro.discretize import Bin, bin_indices, equal_depth_bins, equal_width_bins
from repro.discretize.histogram import v_optimal_partition
from repro.features.chi2 import chi2_sf, chi_square_test
from repro.iunits import IUnit, div_astar, div_greedy, iunit_similarity
from repro.iunits.labeling import LabelingConfig, representative_values
from repro.study.metrics import f1_score

# ---------------------------------------------------------------- columns

values_strategy = st.lists(
    st.one_of(st.none(), st.text(min_size=0, max_size=6)), max_size=60
)


@given(values_strategy)
def test_column_roundtrip_categorical(values):
    col = Column.from_values(
        Attribute("x", AttrKind.CATEGORICAL), values
    )
    decoded = list(col)
    assert decoded == [None if v is None else str(v) for v in values]


@given(st.lists(st.one_of(st.none(), st.floats(
    allow_nan=False, allow_infinity=False, width=32)), max_size=60))
def test_column_value_counts_sum(values):
    col = Column.from_values(Attribute("x", AttrKind.NUMERIC), values)
    counts = col.value_counts()
    assert sum(counts.values()) == len([v for v in values if v is not None])
    assert col.missing_count() == values.count(None)


# -------------------------------------------------------------- binning

finite_vals = st.lists(
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False, width=32),
    min_size=1, max_size=200,
)


@given(finite_vals, st.integers(1, 10))
def test_equal_width_covers_everything(vals, nbins):
    bins = equal_width_bins(vals, nbins)
    idx = bin_indices(np.array(vals, dtype=float), bins)
    assert (idx >= 0).all()


@given(finite_vals, st.integers(1, 10))
def test_equal_depth_covers_everything(vals, nbins):
    bins = equal_depth_bins(vals, nbins)
    idx = bin_indices(np.array(vals, dtype=float), bins)
    assert (idx >= 0).all()
    assert len(bins) <= nbins


@given(finite_vals, st.integers(1, 10))
def test_bins_are_ordered_and_contiguous(vals, nbins):
    bins = equal_width_bins(vals, nbins)
    for a, b in zip(bins, bins[1:]):
        assert a.hi == b.lo
        assert a.lo < a.hi or (a.lo == a.hi and len(bins) == 1)


@given(
    st.lists(st.floats(min_value=0, max_value=100, allow_nan=False),
             min_size=1, max_size=18),
    st.integers(1, 5),
)
def test_voptimal_partition_is_valid(weights, b):
    ranges = v_optimal_partition(weights, b)
    assert ranges[0][0] == 0
    assert ranges[-1][1] == len(weights)
    assert len(ranges) <= b
    for (s1, e1), (s2, e2) in zip(ranges, ranges[1:]):
        assert e1 == s2
        assert s1 < e1


# ------------------------------------------------------------- chi-square

@given(st.floats(min_value=0.001, max_value=500), st.integers(1, 30))
def test_chi2_sf_is_probability(x, df):
    p = chi2_sf(x, df)
    assert 0.0 <= p <= 1.0


@given(st.lists(st.lists(st.integers(0, 50), min_size=2, max_size=4),
                min_size=2, max_size=4).filter(
                    lambda rows: len({len(r) for r in rows}) == 1))
def test_chi_square_result_valid(rows):
    t = np.array(rows, dtype=float)
    r = chi_square_test(t)
    assert r.statistic >= 0.0
    assert 0.0 <= r.p_value <= 1.0


# ------------------------------------------------------------ similarity

def make_unit(vecs):
    dists = {f"a{i}": np.array(v, dtype=float) for i, v in enumerate(vecs)}
    return IUnit("p", "v", 1, tuple(dists), dists, {k: () for k in dists})


unit_vecs = st.lists(
    st.lists(st.floats(min_value=0, max_value=100, allow_nan=False),
             min_size=3, max_size=3),
    min_size=2, max_size=4,
)


@given(unit_vecs, unit_vecs)
def test_iunit_similarity_bounds_and_symmetry(va, vb):
    if len(va) != len(vb):
        va = va[: min(len(va), len(vb))]
        vb = vb[: len(va)]
    a, b = make_unit(va), make_unit(vb)
    s = iunit_similarity(a, b)
    assert 0.0 <= s <= len(va) + 1e-9
    assert s == pytest.approx(iunit_similarity(b, a))


@given(unit_vecs)
def test_iunit_self_similarity_max(vecs):
    a = make_unit(vecs)
    nonzero_dims = sum(1 for v in vecs if any(x > 0 for x in v))
    assert iunit_similarity(a, a) == pytest.approx(nonzero_dims, abs=1e-9)


# ---------------------------------------------------------- diversified top-k

@st.composite
def topk_instance(draw):
    n = draw(st.integers(1, 9))
    scores = draw(st.lists(
        st.floats(min_value=0, max_value=100, allow_nan=False),
        min_size=n, max_size=n,
    ))
    edges = draw(st.lists(st.tuples(
        st.integers(0, n - 1), st.integers(0, n - 1)
    ), max_size=12))
    adj = np.zeros((n, n), dtype=bool)
    for a, b in edges:
        if a != b:
            adj[a][b] = adj[b][a] = True
    k = draw(st.integers(1, n))
    return scores, adj, k


@given(topk_instance())
@settings(max_examples=60)
def test_div_astar_dominates_greedy_and_is_independent(instance):
    scores, adj, k = instance
    exact = div_astar(scores, adj, k)
    greedy = div_greedy(scores, adj, k)
    assert len(exact) <= k
    for a, b in combinations(exact, 2):
        assert not adj[a][b]
    assert sum(scores[i] for i in exact) >= sum(
        scores[i] for i in greedy
    ) - 1e-9


# -------------------------------------------------------------- labeling

@given(st.lists(st.integers(0, 1000), min_size=1, max_size=10),
       st.integers(1, 4))
def test_representative_values_subset_and_ordered(counts, max_display):
    labels = [f"v{i}" for i in range(len(counts))]
    cfg = LabelingConfig(max_display=max_display)
    got = representative_values(np.array(counts, float), labels, cfg)
    assert len(got) <= max_display
    assert len(set(got)) == len(got)
    # representatives must be among the labels, in weakly decreasing count
    picked_counts = [counts[labels.index(g)] for g in got]
    assert picked_counts == sorted(picked_counts, reverse=True)
    if sum(counts) > 0:
        assert len(got) >= 1
        assert counts[labels.index(got[0])] == max(counts)


# -------------------------------------------------------------------- f1

@given(st.lists(st.booleans(), min_size=1, max_size=40),
       st.lists(st.booleans(), min_size=1, max_size=40))
def test_f1_bounds(a, b):
    n = min(len(a), len(b))
    pred, act = np.array(a[:n]), np.array(b[:n])
    s = f1_score(pred, act)
    assert 0.0 <= s <= 1.0
    if s == 1.0:
        assert np.array_equal(pred, act) or not act.any()
