"""Tests for the extension batch: catalog statements, workload
generation, incremental refinement, hierarchical clustering, report."""

import numpy as np
import pytest

from repro import CADViewBuilder, CADViewConfig, DBExplorer
from repro.clustering import agglomerative
from repro.errors import CADViewError, EmptyResultError, ParseError, QueryError
from repro.query import Cmp, QueryEngine, parse, parse_predicate
from repro.query.ast import (
    DescribeStatement, DropCadViewStatement, ShowCadViewsStatement,
)
from repro.study import (
    random_conjunctive_queries, random_subsets, run_study, study_report,
)


class TestCatalogStatements:
    def test_parse_describe(self):
        stmt = parse("DESCRIBE UsedCars")
        assert isinstance(stmt, DescribeStatement)
        assert stmt.table == "UsedCars"

    def test_parse_show_and_drop(self):
        assert isinstance(parse("SHOW CADVIEWS"), ShowCadViewsStatement)
        stmt = parse("DROP CADVIEW v")
        assert isinstance(stmt, DropCadViewStatement) and stmt.name == "v"

    def test_parse_drop_requires_cadview(self):
        with pytest.raises(ParseError):
            parse("DROP TABLE v")

    def test_describe_execution(self, cars):
        dbx = DBExplorer()
        dbx.register("UsedCars", cars)
        rows = dbx.execute("DESCRIBE UsedCars")
        assert ("Engine", "categorical", "hidden") in rows
        assert ("Price", "numeric", "queriable") in rows
        assert len(rows) == 11

    def test_show_and_drop_execution(self, cars):
        dbx = DBExplorer(CADViewConfig(seed=0))
        dbx.register("UsedCars", cars)
        assert dbx.execute("SHOW CADVIEWS") == []
        dbx.execute(
            "CREATE CADVIEW v AS SET pivot = Make SELECT Price "
            "FROM UsedCars WHERE BodyType = SUV IUNITS 2"
        )
        assert dbx.execute("SHOW CADVIEWS") == ["v"]
        assert dbx.execute("DROP CADVIEW v") == []
        with pytest.raises(CADViewError):
            dbx.execute("DROP CADVIEW v")


class TestWorkload:
    def test_random_subsets_sizes(self, cars):
        items = list(random_subsets(cars, [100, 200], repeats=2, seed=0))
        assert len(items) == 4
        assert [n for n, _ in items] == [100, 100, 200, 200]
        assert all(len(t) == n for n, t in items)

    def test_random_subsets_empty_sizes(self, cars):
        with pytest.raises(QueryError):
            list(random_subsets(cars, []))

    def test_conjunctive_queries_selectivity(self, cars):
        qs = random_conjunctive_queries(
            cars, 10, target_selectivity=0.1, seed=3
        )
        assert len(qs) == 10
        for q in qs:
            assert len(q.result) >= 1
            assert q.selectivity <= 1.0
        # most queries should land at or below ~3x the target
        near = [q for q in qs if q.selectivity <= 0.3]
        assert len(near) >= 7

    def test_conjunctive_queries_results_match_predicate(self, cars):
        qs = random_conjunctive_queries(cars, 3, seed=4)
        for q in qs:
            assert len(q.result) == int(q.predicate.mask(cars).sum())

    def test_conjunctive_queries_validation(self, cars):
        with pytest.raises(QueryError):
            random_conjunctive_queries(cars, 0)
        with pytest.raises(QueryError):
            random_conjunctive_queries(cars, 1, target_selectivity=0.0)

    def test_only_queriable_attributes_used(self, cars):
        qs = random_conjunctive_queries(cars, 10, seed=5)
        for q in qs:
            assert "Engine" not in q.predicate.attributes()


class TestRefine:
    @pytest.fixture(scope="class")
    def built(self, cars):
        result = QueryEngine.select(cars, parse_predicate("BodyType = SUV"))
        builder = CADViewBuilder(CADViewConfig(seed=1))
        cad = builder.build(result, "Make", exclude=("BodyType",))
        return builder, cad

    def test_refine_preserves_context(self, built):
        builder, cad = built
        refined = builder.refine(cad, Cmp("Price", "<", 25_000))
        assert refined.compare_attributes == cad.compare_attributes
        for attr in cad.compare_attributes:
            assert refined.view.labels(attr) == cad.view.labels(attr)

    def test_refine_shrinks_rows(self, built):
        builder, cad = built
        refined = builder.refine(cad, Cmp("Price", "<", 25_000))
        assert len(refined.view) < len(cad.view)
        for value in refined.pivot_values:
            total = sum(u.size for u in refined.candidates[value])
            assert total <= sum(u.size for u in cad.candidates[value])

    def test_refine_drops_empty_pivot_values(self, built):
        builder, cad = built
        # luxury makes vanish under a harsh price cap
        refined = builder.refine(cad, Cmp("Price", "<", 12_000))
        assert set(refined.pivot_values) < set(cad.pivot_values)

    def test_refine_skips_feature_selection(self, built):
        builder, cad = built
        refined = builder.refine(cad, Cmp("Price", "<", 25_000))
        assert refined.profile.compare_attrs_s == 0.0

    def test_refine_empty_raises(self, built):
        builder, cad = built
        with pytest.raises(EmptyResultError):
            builder.refine(cad, Cmp("Price", "<", 0))


class TestAgglomerative:
    def test_recovers_blobs(self):
        rng = np.random.default_rng(0)
        X = np.vstack([
            rng.normal([0, 0], 0.2, (50, 2)),
            rng.normal([5, 5], 0.2, (50, 2)),
        ])
        res = agglomerative(X, 2)
        assert sorted(res.cluster_sizes()) == [50, 50]

    def test_merge_heights_monotone_nondecreasing_tail(self):
        rng = np.random.default_rng(1)
        X = rng.normal(0, 1, (60, 2))
        res = agglomerative(X, 3)
        # average-linkage merges happen in non-decreasing distance order
        heights = list(res.merge_heights)
        assert all(b >= a - 1e-9 for a, b in zip(heights, heights[1:]))

    def test_sampling_path_assigns_everything(self):
        rng = np.random.default_rng(2)
        X = np.vstack([
            rng.normal([0, 0], 0.2, (400, 2)),
            rng.normal([5, 5], 0.2, (400, 2)),
        ])
        res = agglomerative(X, 2, max_rows=100, seed=2)
        assert res.labels.min() >= 0
        assert sorted(res.cluster_sizes()) == [400, 400]

    def test_k_one(self):
        X = np.random.default_rng(3).normal(0, 1, (20, 2))
        res = agglomerative(X, 1)
        assert res.n_clusters == 1
        assert (res.labels == 0).all()

    def test_validation(self):
        with pytest.raises(QueryError):
            agglomerative(np.empty((0, 2)), 2)
        with pytest.raises(QueryError):
            agglomerative(np.zeros((5, 2)), 0)


class TestStudyReport:
    def test_report_structure(self, mushroom):
        results = run_study(mushroom, seed=2016)
        text = study_report(results, title="Repro study")
        assert "# Repro study" in text
        assert "## Simple Classifier" in text
        assert "## Most Similar Facet Value Pair" in text
        assert "## Alternative Search Condition" in text
        assert "| U1 |" in text
        assert "speedup" in text
        assert "chi2(1)" in text
