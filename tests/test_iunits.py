"""Unit tests for IUnit construction, labeling, and preferences."""

import numpy as np
import pytest

from repro.discretize import Discretizer
from repro.errors import CADViewError
from repro.iunits import (
    AttributePreference,
    CompositePreference,
    IUnit,
    LabelingConfig,
    SizePreference,
    build_iunits,
    label_cluster,
    representative_values,
)


def make_iunit(size=10, dists=None, display=None):
    dists = dists or {"a": np.array([8.0, 2.0]), "b": np.array([10.0, 0.0])}
    display = display or {"a": ("x",), "b": ("y",)}
    return IUnit("pivot", "v", size, tuple(dists), dists, display)


class TestIUnit:
    def test_missing_distribution_raises(self):
        with pytest.raises(CADViewError):
            IUnit("p", "v", 5, ("a", "b"), {"a": np.array([1.0])}, {})

    def test_with_uid(self):
        u = make_iunit()
        ranked = u.with_uid(2)
        assert ranked.uid == 2 and u.uid is None
        assert ranked.size == u.size

    def test_label_text(self):
        u = make_iunit(display={"a": ("x", "z"), "b": ()})
        assert u.label_text("a") == "[x] [z]"
        assert u.label_text("b") == "[-]"

    def test_top_values(self):
        u = make_iunit()
        assert u.top_values("a") == ((0, 8), (1, 2))
        assert u.top_values("b") == ((0, 10),)


class TestRepresentativeValues:
    LABELS = ("red", "blue", "green")

    def test_dominant_value_alone(self):
        got = representative_values(
            np.array([90.0, 5.0, 5.0]), self.LABELS, LabelingConfig()
        )
        assert got == ("red",)

    def test_statistical_tie_grouped(self):
        got = representative_values(
            np.array([48.0, 46.0, 6.0]), self.LABELS, LabelingConfig()
        )
        assert got == ("red", "blue")

    def test_max_display_cap(self):
        cfg = LabelingConfig(max_display=1)
        got = representative_values(
            np.array([50.0, 50.0, 0.0]), self.LABELS, cfg
        )
        assert len(got) == 1

    def test_min_share_filters_noise(self):
        cfg = LabelingConfig(max_display=3, min_share=0.2)
        got = representative_values(
            np.array([80.0, 15.0, 5.0]), self.LABELS, cfg
        )
        assert got == ("red",)

    def test_empty_counts(self):
        assert representative_values(
            np.zeros(3), self.LABELS, LabelingConfig()
        ) == ()

    def test_order_is_frequency_order(self):
        got = representative_values(
            np.array([20.0, 80.0, 0.0]), self.LABELS,
            LabelingConfig(max_display=2, min_share=0.0, alpha=1.0),
        )
        assert got[0] == "blue"


class TestLabelCluster:
    def test_basic(self, toy_table):
        view = Discretizer(nbins=3).fit(toy_table)
        mask = view.codes("city") == view.code_of("city", "Paris")
        unit = label_cluster(view, mask, "city", "Paris", ["stars", "price"])
        assert unit.size == 3
        assert set(unit.compare_attributes) == {"stars", "price"}
        assert unit.distributions["stars"].sum() == 3

    def test_empty_cluster_raises(self, toy_table):
        view = Discretizer().fit(toy_table)
        with pytest.raises(CADViewError):
            label_cluster(
                view, np.zeros(len(toy_table), bool), "city", "x", ["stars"]
            )

    def test_build_iunits_skips_negative_labels(self, toy_table):
        view = Discretizer().fit(toy_table)
        labels = np.array([0, 0, 1, 1, -1, -1, 0, 1])
        units = build_iunits(view, labels, "city", "all", ["stars"])
        assert len(units) == 2
        assert sum(u.size for u in units) == 6

    def test_distribution_matches_counts(self, toy_table):
        view = Discretizer().fit(toy_table)
        labels = np.zeros(len(toy_table), dtype=int)
        (unit,) = build_iunits(view, labels, "city", "all", ["city"])
        counts = view.value_counts("city")
        for code, label in enumerate(view.labels("city")):
            assert unit.distributions["city"][code] == counts.get(label, 0)


class TestPreferences:
    def test_size_preference(self):
        small, big = make_iunit(size=5), make_iunit(size=50)
        pref = SizePreference()
        assert pref(big) > pref(small)

    def test_attribute_preference_ascending(self, toy_table):
        view = Discretizer(nbins=3).fit(toy_table)
        mask_cheap = view.codes("price") == 0
        mask_rich = view.codes("price") == view.ncodes("price") - 1
        cheap = label_cluster(view, mask_cheap, "city", "x", ["price"])
        rich = label_cluster(view, mask_rich, "city", "x", ["price"])
        asc = AttributePreference(view, "price", ascending=True)
        assert asc(cheap) > asc(rich)
        desc = AttributePreference(view, "price", ascending=False)
        assert desc(rich) > desc(cheap)

    def test_attribute_preference_needs_binned(self, toy_table):
        view = Discretizer().fit(toy_table)
        with pytest.raises(CADViewError):
            AttributePreference(view, "city")

    def test_composite(self):
        small, big = make_iunit(size=5), make_iunit(size=50)
        pref = CompositePreference([SizePreference()], weights=[2.0])
        assert pref(big) == 100.0
        assert pref(small) == 10.0

    def test_composite_validation(self):
        with pytest.raises(CADViewError):
            CompositePreference([])
        with pytest.raises(CADViewError):
            CompositePreference([SizePreference()], weights=[1.0, 2.0])
