"""Unit tests for repro.dataset.table."""

import io

import numpy as np
import pytest

from repro.dataset import AttrKind, Attribute, Schema, Table
from repro.errors import (
    DataIngestError,
    SchemaError,
    UnknownAttributeError,
)


class TestConstruction:
    def test_from_rows_missing_keys_become_none(self, toy_schema):
        t = Table.from_rows(toy_schema, [{"city": "Paris"}])
        assert t.row(0)["price"] is None

    def test_from_columns(self, toy_schema):
        t = Table.from_columns(toy_schema, {
            "city": ["Paris"], "stars": [5], "price": [100.0],
            "amenity": ["spa"],
        })
        assert len(t) == 1

    def test_from_columns_missing_column_raises(self, toy_schema):
        with pytest.raises(SchemaError, match="missing columns"):
            Table.from_columns(toy_schema, {"city": ["Paris"]})

    def test_from_columns_unknown_column_raises(self, toy_schema):
        with pytest.raises(UnknownAttributeError):
            Table.from_columns(toy_schema, {
                "city": [], "stars": [], "price": [], "amenity": [],
                "bogus": [],
            })

    def test_ragged_columns_raise(self, toy_schema):
        with pytest.raises(SchemaError, match="ragged"):
            Table.from_columns(toy_schema, {
                "city": ["a"], "stars": [1, 2], "price": [1.0],
                "amenity": ["x"],
            })

    def test_empty_table(self, toy_schema):
        t = Table.from_rows(toy_schema, [])
        assert len(t) == 0


class TestAccess:
    def test_getitem_column(self, toy_table):
        assert toy_table["city"][0] == "Paris"

    def test_getitem_unknown(self, toy_table):
        with pytest.raises(UnknownAttributeError):
            toy_table["bogus"]

    def test_row_out_of_range(self, toy_table):
        with pytest.raises(IndexError):
            toy_table.row(99)

    def test_iter_rows(self, toy_table):
        rows = list(toy_table.iter_rows())
        assert len(rows) == 8
        assert rows[0]["city"] == "Paris"

    def test_equality(self, toy_schema, toy_table):
        same = Table.from_rows(toy_schema, toy_table.iter_rows())
        assert same == toy_table
        assert toy_table != toy_table.head(3)


class TestRelationalOps:
    def test_filter(self, toy_table):
        mask = np.array([r["city"] == "Paris" for r in toy_table.iter_rows()])
        paris = toy_table.filter(mask)
        assert len(paris) == 3
        assert set(paris.distinct("city")) == {"Paris"}

    def test_filter_wrong_length_raises(self, toy_table):
        with pytest.raises(SchemaError):
            toy_table.filter(np.array([True]))

    def test_take_repeats_and_order(self, toy_table):
        t = toy_table.take([1, 1, 0])
        assert len(t) == 3
        assert t.row(0)["stars"] == 4.0
        assert t.row(2)["stars"] == 5.0

    def test_project(self, toy_table):
        p = toy_table.project(["price", "city"])
        assert p.schema.names == ("price", "city")
        assert len(p) == len(toy_table)

    def test_sample_smaller(self, toy_table):
        s = toy_table.sample(3, np.random.default_rng(0))
        assert len(s) == 3

    def test_sample_larger_returns_self(self, toy_table):
        assert toy_table.sample(100) is toy_table

    def test_head(self, toy_table):
        assert len(toy_table.head(2)) == 2
        assert len(toy_table.head(100)) == len(toy_table)

    def test_concat(self, toy_table):
        both = toy_table.concat(toy_table)
        assert len(both) == 2 * len(toy_table)
        assert both.value_counts("city")["Paris"] == 6

    def test_concat_merges_disjoint_categories(self, toy_schema):
        a = Table.from_rows(toy_schema, [
            {"city": "Oslo", "stars": 3, "price": 1.0, "amenity": "x"}
        ])
        b = Table.from_rows(toy_schema, [
            {"city": "Rome", "stars": 3, "price": 1.0, "amenity": "y"}
        ])
        both = a.concat(b)
        assert list(both["city"]) == ["Oslo", "Rome"]

    def test_concat_schema_mismatch(self, toy_table):
        other_schema = Schema([Attribute("x", AttrKind.NUMERIC)])
        other = Table.from_rows(other_schema, [{"x": 1}])
        with pytest.raises(SchemaError):
            toy_table.concat(other)


class TestSummaries:
    def test_value_counts(self, toy_table):
        assert toy_table.value_counts("city") == {
            "Paris": 3, "Lyon": 2, "Nice": 2,
        }

    def test_distinct_numeric(self, toy_table):
        assert toy_table.distinct("stars") == (1.0, 2.0, 3.0, 4.0, 5.0)


class TestCSV:
    def test_roundtrip(self, toy_schema, toy_table):
        text = toy_table.to_csv_string()
        back = Table.from_csv(io.StringIO(text), toy_schema)
        assert back == toy_table

    def test_missing_values_roundtrip(self, toy_schema, toy_table):
        text = toy_table.to_csv_string()
        back = Table.from_csv(io.StringIO(text), toy_schema)
        assert back.row(7)["city"] is None
        assert back.row(6)["price"] is None

    def test_header_mismatch_raises(self, toy_schema):
        with pytest.raises(SchemaError):
            Table.from_csv(io.StringIO("a,b\n1,2\n"), toy_schema)

    def test_empty_csv_raises(self, toy_schema):
        with pytest.raises(SchemaError, match="no header"):
            Table.from_csv(io.StringIO(""), toy_schema)

    def test_file_roundtrip(self, tmp_path, toy_schema, toy_table):
        path = str(tmp_path / "t.csv")
        toy_table.to_csv(path)
        assert Table.from_csv(path, toy_schema) == toy_table


class TestIngestion:
    """Bad CSV rows fail with context — or are quarantined on request."""

    HEADER = "city,stars,price,amenity"

    def _csv(self, *rows):
        return io.StringIO("\n".join((self.HEADER,) + rows) + "\n")

    def test_non_numeric_value_raises_with_context(self, toy_schema):
        buf = self._csv("Paris,5,400.0,spa", "Lyon,cheap,80.0,gym")
        with pytest.raises(DataIngestError) as excinfo:
            Table.from_csv(buf, toy_schema)
        err = excinfo.value
        assert err.row == 2           # 1-based, header not counted
        assert err.column == "stars"
        assert "'cheap'" in str(err)
        assert "row 2" in str(err)

    def test_path_lands_in_the_error(self, tmp_path, toy_schema):
        path = tmp_path / "hotels.csv"
        path.write_text(self.HEADER + "\nParis,oops,400.0,spa\n")
        with pytest.raises(DataIngestError, match="hotels.csv"):
            Table.from_csv(str(path), toy_schema)

    def test_short_row_raises_with_context(self, toy_schema):
        with pytest.raises(DataIngestError, match="row 1") as excinfo:
            Table.from_csv(self._csv("Paris,5"), toy_schema)
        assert "2 field" in str(excinfo.value)

    def test_ingest_error_is_a_schema_error(self, toy_schema):
        # existing `except SchemaError` call sites keep working
        with pytest.raises(SchemaError):
            Table.from_csv(self._csv("Paris,bad,1.0,spa"), toy_schema)

    def test_max_bad_rows_quarantines(self, toy_schema):
        buf = self._csv(
            "Paris,5,400.0,spa",
            "Lyon,cheap,80.0,gym",     # bad: non-numeric stars
            "Nice,3,x,pool",           # bad: non-numeric price
            "Paris,4,250.0,gym",
        )
        table = Table.from_csv(buf, toy_schema, max_bad_rows=2)
        assert len(table) == 2
        assert [e.row for e in table.quarantined] == [2, 3]
        assert [e.column for e in table.quarantined] == ["stars", "price"]

    def test_one_bad_row_past_the_limit_raises(self, toy_schema):
        buf = self._csv("Lyon,cheap,80.0,gym", "Nice,3,x,pool")
        with pytest.raises(DataIngestError) as excinfo:
            Table.from_csv(buf, toy_schema, max_bad_rows=1)
        assert excinfo.value.row == 2  # the second bad row blew the cap

    def test_clean_load_has_empty_quarantine(self, toy_schema, toy_table):
        back = Table.from_csv(
            io.StringIO(toy_table.to_csv_string()), toy_schema,
            max_bad_rows=5,
        )
        assert back.quarantined == ()
        assert back == toy_table

    def test_negative_limit_rejected(self, toy_schema):
        with pytest.raises(ValueError, match="max_bad_rows"):
            Table.from_csv(self._csv(), toy_schema, max_bad_rows=-1)
