"""Tests for digests, the faceted engine, sessions, and TPFacet."""

import numpy as np
import pytest

from repro.core import CADViewConfig
from repro.errors import CADViewError, QueryError
from repro.facets import (
    Digest, FacetedEngine, FacetSession, Phase, TPFacetSession,
)
from repro.query import Eq


@pytest.fixture(scope="module")
def engine(mushroom):
    return FacetedEngine(mushroom)


@pytest.fixture(scope="module")
def car_engine(cars):
    return FacetedEngine(cars)


class TestDigest:
    def test_values_and_total(self, engine):
        d = engine.digest({})
        assert d.total == 3000
        assert sum(d.values("class").values()) == 3000

    def test_unknown_attribute(self, engine):
        with pytest.raises(QueryError):
            engine.digest({}).values("bogus")

    def test_self_similarity_is_one(self, engine):
        d = engine.digest({"odor": {"foul"}})
        assert d.cosine_similarity(d) == pytest.approx(1.0)
        assert d.distance(d) == pytest.approx(0.0)

    def test_disjoint_selections_lower_similarity(self, engine):
        foul = engine.digest({"odor": {"foul"}})
        almond = engine.digest({"odor": {"almond"}})
        assert foul.cosine_similarity(almond) < 0.95

    def test_attribute_cosine_of_empty_attributes(self):
        a = Digest({"x": {}}, 0)
        b = Digest({"x": {}}, 0)
        assert a.attribute_cosine(b, "x") == 1.0

    def test_attribute_cosine_one_empty(self):
        a = Digest({"x": {"v": 3}}, 3)
        b = Digest({"x": {}}, 0)
        assert a.attribute_cosine(b, "x") == 0.0

    def test_no_shared_attributes_raises(self):
        a = Digest({"x": {"v": 1}}, 1)
        b = Digest({"y": {"v": 1}}, 1)
        with pytest.raises(QueryError):
            a.cosine_similarity(b)


class TestFacetedEngine:
    def test_facet_values(self, engine):
        assert "foul" in engine.facet_values("odor")

    def test_facet_values_unknown_attr(self, engine):
        with pytest.raises(QueryError):
            engine.facet_values("bogus")

    def test_predicate_for_categorical(self, engine, mushroom):
        p = engine.predicate_for("odor", "foul")
        assert p == Eq("odor", "foul")

    def test_predicate_for_unknown_value(self, engine):
        with pytest.raises(QueryError):
            engine.predicate_for("odor", "minty")

    def test_numeric_ranges(self, car_engine):
        values = car_engine.facet_values("Price")
        assert all("-" in v for v in values)
        p = car_engine.predicate_for("Price", values[0])
        assert p.mask(car_engine.table).any()

    def test_selection_semantics_or_within_and_across(self, engine, mushroom):
        sels = {
            "odor": {"foul", "pungent"},
            "class": {"poisonous"},
        }
        result = engine.result(sels)
        for row in result.head(50).iter_rows():
            assert row["odor"] in ("foul", "pungent")
            assert row["class"] == "poisonous"

    def test_empty_selection_returns_all(self, engine, mushroom):
        assert len(engine.result({})) == len(mushroom)

    def test_digest_counts_match_result(self, engine):
        sels = {"odor": {"foul"}}
        d = engine.digest(sels)
        result = engine.result(sels)
        assert d.total == len(result)
        assert d.values("class") == result.value_counts("class")

    def test_hidden_attribute_not_facetable(self, cars):
        e = FacetedEngine(cars)  # Engine is hidden in the car schema
        assert "Engine" not in e.queriable
        with pytest.raises(QueryError):
            e.predicate_for("Engine", "V6")

    def test_explicit_queriable_list(self, mushroom):
        e = FacetedEngine(mushroom, queriable=["odor", "class"])
        assert e.queriable == ("odor", "class")


class TestFacetSession:
    def test_toggle_select_deselect(self, engine):
        s = FacetSession(engine)
        s.toggle("odor", "foul")
        assert s.selections == {"odor": {"foul"}}
        s.toggle("odor", "foul")
        assert s.selections == {}

    def test_toggle_validates(self, engine):
        s = FacetSession(engine)
        with pytest.raises(QueryError):
            s.toggle("odor", "minty")

    def test_clear(self, engine):
        s = FacetSession(engine)
        s.toggle("odor", "foul")
        s.toggle("class", "poisonous")
        s.clear("odor")
        assert "odor" not in s.selections
        s.clear()
        assert s.selections == {}

    def test_operations_logged(self, engine):
        s = FacetSession(engine)
        s.toggle("odor", "foul")
        s.digest()
        s.count()
        s.result()
        kinds = [op[0] for op in s.operations]
        assert kinds == ["toggle", "digest", "count", "result"]
        assert s.operation_count == 4


class TestTPFacetSession:
    def make(self, engine):
        return TPFacetSession(engine, CADViewConfig(seed=6))

    def test_phase_toggle(self, engine):
        s = self.make(engine)
        assert s.phase is Phase.RESULTS
        assert s.toggle_phase() is Phase.CAD_VIEW
        assert s.toggle_phase() is Phase.RESULTS

    def test_pivot_must_be_queriable(self, cars):
        s = TPFacetSession(FacetedEngine(cars))
        with pytest.raises(QueryError):
            s.set_pivot("Engine")  # hidden attribute

    def test_cadview_requires_pivot(self, engine):
        s = self.make(engine)
        with pytest.raises(CADViewError):
            s.cadview()

    def test_cadview_built_and_cached(self, engine):
        s = self.make(engine)
        s.set_pivot("gill-color")
        a = s.cadview()
        b = s.cadview()
        assert a is b  # cached
        assert s.phase is Phase.CAD_VIEW

    def test_selection_invalidates_cadview(self, engine):
        s = self.make(engine)
        s.set_pivot("gill-color")
        a = s.cadview()
        s.toggle("bruises", "false")
        b = s.cadview()
        assert a is not b

    def test_single_value_selections_excluded_from_compare(self, engine):
        s = self.make(engine)
        s.toggle("bruises", "false")
        s.set_pivot("gill-color")
        cad = s.cadview()
        assert "bruises" not in cad.compare_attributes

    def test_empty_result_raises(self, engine):
        s = self.make(engine)
        s.toggle("odor", "foul")
        s.toggle("class", "edible")  # contradiction: no foul edibles
        s.set_pivot("gill-color")
        with pytest.raises(CADViewError):
            s.cadview()

    def test_click_iunit_requires_view(self, engine):
        s = self.make(engine)
        with pytest.raises(CADViewError):
            s.click_iunit("brown", 1)

    def test_click_iunit_returns_similar(self, engine):
        s = self.make(engine)
        s.set_pivot("gill-color")
        cad = s.cadview()
        hits = s.click_iunit(cad.pivot_values[0], 1, threshold=0.0)
        assert len(hits) >= 1

    def test_click_pivot_value_reorders(self, engine):
        s = self.make(engine)
        s.set_pivot("gill-color")
        cad = s.cadview()
        target = cad.pivot_values[2]
        reordered = s.click_pivot_value(target)
        assert reordered.pivot_values[0] == target

    def test_operation_log_kinds(self, engine):
        s = self.make(engine)
        s.set_pivot("gill-color")
        s.cadview()
        s.click_iunit(s.cadview().pivot_values[0], 1, threshold=0.0)
        kinds = {op[0] for op in s.operations}
        assert {"pivot", "cadview", "click_iunit"} <= kinds
