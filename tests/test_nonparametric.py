"""Unit tests for the Wilcoxon signed-rank test."""

import numpy as np
import pytest

from repro.errors import QueryError
from repro.stats import wilcoxon_signed_rank


class TestExact:
    def test_known_textbook_case(self):
        """Classic example: n=8, W+ computed by hand.

        Differences 4,-2,6,8,-1,3,5,7 -> |d| ranks 1..8, W+ = sum of
        ranks of positive d.  Verify against scipy-reported two-sided
        exact p for this configuration (0.1484375 for W=4.. compute
        directly instead: test internal consistency + symmetry).
        """
        x = np.array([14.0, 8.0, 16.0, 18.0, 9.0, 13.0, 15.0, 17.0])
        y = np.array([10.0, 10.0, 10.0, 10.0, 10.0, 10.0, 10.0, 10.0])
        res = wilcoxon_signed_rank(x, y)
        assert res.method == "exact"
        assert res.n == 8
        # swapping arguments mirrors the statistic and keeps p
        mirrored = wilcoxon_signed_rank(y, x)
        assert res.p_value == pytest.approx(mirrored.p_value)
        assert res.statistic + mirrored.statistic == 8 * 9 / 2

    def test_all_positive_differences_extreme(self):
        x = np.arange(1.0, 11.0) + 5.0
        y = np.arange(1.0, 11.0)
        res = wilcoxon_signed_rank(x, y)
        assert res.statistic == 55.0  # all ranks positive
        # most extreme outcome: p = 2 / 2^10
        assert res.p_value == pytest.approx(2 / 2**10)

    def test_scipy_agreement_exact(self):
        from scipy.stats import wilcoxon as scipy_wilcoxon

        rng = np.random.default_rng(3)
        for trial in range(8):
            x = rng.normal(0, 1, 12)
            y = x + rng.normal(0.3, 1, 12)
            if np.any(x == y):
                continue
            ours = wilcoxon_signed_rank(x, y)
            ref = scipy_wilcoxon(x, y, mode="exact")
            assert ours.p_value == pytest.approx(ref.pvalue, abs=1e-9), trial

    def test_identical_samples(self):
        x = np.ones(6)
        res = wilcoxon_signed_rank(x, x)
        assert res.n == 0 and res.p_value == 1.0

    def test_zero_differences_dropped(self):
        x = np.array([1.0, 2.0, 3.0, 4.0])
        y = np.array([1.0, 1.0, 4.0, 3.0])
        res = wilcoxon_signed_rank(x, y)
        assert res.n == 3

    def test_balanced_case_p_one(self):
        x = np.array([1.0, -1.0])
        y = np.zeros(2)
        res = wilcoxon_signed_rank(x, y)
        assert res.p_value == 1.0


class TestNormalApprox:
    def test_large_n_shifts_detected(self):
        rng = np.random.default_rng(4)
        x = rng.normal(0, 1, 60)
        y = x + 0.8 + rng.normal(0, 0.3, 60)
        res = wilcoxon_signed_rank(x, y)
        assert res.method == "normal"
        assert res.p_value < 0.001

    def test_large_n_null_not_significant(self):
        rng = np.random.default_rng(5)
        x = rng.normal(0, 1, 80)
        y = x + rng.normal(0, 1, 80)
        res = wilcoxon_signed_rank(x, y)
        assert res.p_value > 0.01


class TestValidation:
    def test_shape_mismatch(self):
        with pytest.raises(QueryError):
            wilcoxon_signed_rank([1.0, 2.0], [1.0])


class TestOnStudyData:
    def test_agrees_with_mixed_model_direction(self, mushroom):
        """Nonparametric robustness check on the actual study output."""
        from repro.study import run_study

        results = run_study(mushroom, seed=2016)
        table = results.table("classifier", "minutes")
        solr = [table[u]["Solr"] for u in sorted(table)]
        tp = [table[u]["TPFacet"] for u in sorted(table)]
        res = wilcoxon_signed_rank(solr, tp)
        assert res.p_value < 0.05  # the big time effect survives
        assert np.median(np.array(solr) - np.array(tp)) > 0
