"""The resilience layer: budgets, the degradation ladder, fault injection.

Every rung of the builder's ladder is forced via the deterministic
:class:`FaultInjector` (timeout mid-clustering, chi-square failure,
empty partition, retry-then-succeed), and a property test checks the
interactive-latency contract: a budgeted build either returns (possibly
degraded/partial) near the deadline or raises a typed
:class:`BudgetExceededError` — never hangs, never dies with an
unplanned exception.
"""

import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    Budget,
    BudgetExceededError,
    CADViewBuilder,
    CADViewConfig,
    DBExplorer,
    FaultInjector,
    Table,
)
from repro.dataset import AttrKind, Attribute, Schema
from repro.errors import CADViewError, ConvergenceError, EmptyResultError
from repro.query.predicates import Ne
from repro.robustness import Fault, NO_FAULTS
from repro.robustness.faults import _parse_fault

SQL = """
    CREATE CADVIEW V AS SET pivot = Make SELECT Price
    FROM UsedCars WHERE BodyType = SUV LIMIT COLUMNS 5 IUNITS 3
"""


def small_table(n_rows=400, pivot_card=4, seed=0) -> Table:
    schema = Schema([
        Attribute("pv", AttrKind.CATEGORICAL),
        Attribute("c0", AttrKind.CATEGORICAL),
        Attribute("c1", AttrKind.CATEGORICAL),
        Attribute("n0", AttrKind.NUMERIC),
    ])
    rng = np.random.default_rng(seed)
    rows = [
        {
            "pv": f"p{rng.integers(pivot_card)}",
            "c0": f"a{rng.integers(3)}",
            "c1": f"b{rng.integers(4)}",
            "n0": float(rng.normal(0, 10)),
        }
        for _ in range(n_rows)
    ]
    return Table.from_rows(schema, rows)


# ------------------------------------------------------------------ budget

class TestBudget:
    def test_unlimited_never_trips(self):
        clock = Budget().begin()
        clock.check("anything")
        assert clock.remaining() == float("inf")
        assert clock.pressure() == 0.0
        assert not clock.exceeded()
        assert not clock.under_pressure()

    def test_deadline_trips_typed_error(self):
        clock = Budget(deadline_s=0.001).begin()
        time.sleep(0.005)
        assert clock.exceeded()
        with pytest.raises(BudgetExceededError) as exc:
            clock.check("cluster")
        assert exc.value.phase == "cluster"
        assert exc.value.elapsed_s > exc.value.deadline_s

    def test_checkpoint_binds_phase(self):
        clock = Budget(deadline_s=0.001).begin()
        cp = clock.checkpoint("topk")
        time.sleep(0.005)
        with pytest.raises(BudgetExceededError, match="topk"):
            cp()

    def test_pressure_fraction(self):
        clock = Budget(deadline_s=10.0, degrade_at=0.5).begin()
        assert clock.pressure() < 0.01
        assert not clock.under_pressure()

    def test_row_cap_combines_rows_and_cells(self):
        b = Budget(max_rows=1000, max_cells=4000)
        assert b.row_cap(n_attributes=10) == 400
        assert b.row_cap(n_attributes=1) == 1000
        assert Budget().row_cap(5) is None
        assert Budget(max_rows=7).row_cap(0) == 7

    def test_validation(self):
        with pytest.raises(ValueError):
            Budget(deadline_s=0.0)
        with pytest.raises(ValueError):
            Budget(retries=-1)
        with pytest.raises(ValueError):
            Budget(degrade_at=0.0)


# ------------------------------------------------------------- fault injector

class TestFaultInjector:
    def test_counting_fault_fires_then_stops(self):
        inj = FaultInjector({"cluster": Fault("convergence", times=2)})
        for _ in range(2):
            with pytest.raises(ConvergenceError):
                inj.fire("cluster")
        inj.fire("cluster")  # exhausted: no-op
        assert inj.fired("cluster") == 2

    def test_site_narrowed_to_pivot_value(self):
        inj = FaultInjector({"cluster:Jeep": "crash"})
        inj.fire("cluster", "Ford")  # different value: no-op
        inj.fire("cluster")          # bare phase: no-op
        with pytest.raises(RuntimeError):
            inj.fire("cluster", "Jeep")

    def test_sleep_fault_delays_without_raising(self):
        inj = FaultInjector({"topk": Fault("sleep", delay_s=0.02)})
        t0 = time.perf_counter()
        inj.fire("topk")
        assert time.perf_counter() - t0 >= 0.02
        inj.fire("topk")  # times=1 consumed

    def test_probabilistic_fault_is_deterministic(self):
        runs = []
        for _ in range(2):
            inj = FaultInjector(
                {"cluster": Fault("crash", times=None, p=0.5)}, seed=3
            )
            fired = []
            for _ in range(20):
                try:
                    inj.fire("cluster")
                    fired.append(False)
                except RuntimeError:
                    fired.append(True)
            runs.append(fired)
        assert runs[0] == runs[1]
        assert any(runs[0]) and not all(runs[0])

    def test_parse_spec(self):
        inj = FaultInjector.parse(
            "cluster:Jeep=convergence*2, topk=sleep:0.05, chi=crash*inf"
        )
        assert inj.plan["cluster:Jeep"] == Fault("convergence", times=2)
        assert inj.plan["topk"] == Fault("sleep", times=1, delay_s=0.05)
        assert inj.plan["chi"] == Fault("crash", times=None)

    def test_parse_rejects_junk(self):
        with pytest.raises(ValueError):
            FaultInjector.parse("no-equals-sign")
        with pytest.raises(ValueError):
            _parse_fault("frobnicate")

    def test_from_env(self):
        assert FaultInjector.from_env({}) is None
        assert FaultInjector.from_env({"REPRO_FAULTS": "0"}) is None
        empty = FaultInjector.from_env({"REPRO_FAULTS": "1"})
        assert empty is not None and not empty.enabled
        planned = FaultInjector.from_env(
            {"REPRO_FAULTS": "cluster=convergence"}
        )
        assert planned.enabled
        assert NO_FAULTS.enabled is False


# ------------------------------------------------------- degradation ladder

class TestDegradationLadder:
    """Each rung forced via injected faults on a real (small) build."""

    def build(self, faults=None, budget=None, table=None, **config):
        builder = CADViewBuilder(
            CADViewConfig(seed=0, **config), budget=budget, faults=faults
        )
        return builder.build(table or small_table(), pivot="pv")

    def test_clean_build_has_clean_report(self):
        cad = self.build()
        assert cad.report.clean
        assert not cad.is_partial and not cad.is_degraded
        assert cad.report.elapsed_s > 0.0

    def test_convergence_retry_then_succeed(self):
        faults = FaultInjector({"cluster:p0": Fault("convergence", times=1)})
        cad = self.build(faults=faults)
        assert [r.pivot_value for r in cad.report.retries] == ["p0"]
        assert not cad.report.incidents
        assert "p0" in cad.pivot_values  # recovered, not dropped
        assert cad.report.clean is False

    def test_convergence_exhausted_degrades_to_whole_partition(self):
        faults = FaultInjector({"cluster:p0": Fault("convergence", times=None)})
        cad = self.build(faults=faults)
        assert "p0" in cad.pivot_values  # degraded, not dropped
        assert len(cad.rows["p0"]) == 1  # the single whole-partition IUnit
        table = small_table()
        assert cad.rows["p0"][0].size == table.value_counts("pv")["p0"]
        assert any(
            d.phase == "cluster" and d.to_mode == "whole-partition-iunit"
            for d in cad.report.degradations
        )
        # other pivot values still clustered normally
        assert any(len(cad.rows[v]) > 1 for v in cad.pivot_values)

    def test_crash_isolated_to_one_pivot_value(self):
        faults = FaultInjector({"cluster:p1": "crash"})
        cad = self.build(faults=faults)
        assert "p1" not in cad.pivot_values
        assert cad.report.dropped_values == ["p1"]
        assert len(cad.report.incidents) == 1
        assert cad.report.incidents[0].pivot_value == "p1"
        assert cad.is_partial

    def test_empty_partition_isolated(self):
        faults = FaultInjector({"cluster:p2": "empty"})
        cad = self.build(faults=faults)
        assert "p2" not in cad.pivot_values
        assert cad.report.incidents[0].error == "EmptyResultError"

    def test_all_values_failing_raises(self):
        faults = FaultInjector({"cluster": Fault("crash", times=None)})
        with pytest.raises(CADViewError, match="every pivot value failed"):
            self.build(faults=faults)

    def test_chi2_failure_falls_back_to_entropy(self):
        faults = FaultInjector({"feature_selection": "crash"})
        cad = self.build(faults=faults)
        assert len(cad.compare_attributes) >= 1  # entropy rung filled in
        assert any(
            i.phase == "feature_selection" for i in cad.report.incidents
        )
        assert not cad.is_partial  # the view itself is complete

    def test_timeout_mid_clustering_truncates_or_degrades(self):
        # every clustering consult sleeps past the deadline: the first
        # value degrades/truncates, the build still answers
        faults = FaultInjector(
            {"cluster": Fault("sleep", times=None, delay_s=0.03)}
        )
        budget = Budget(deadline_s=0.05)
        t0 = time.perf_counter()
        try:
            cad = self.build(faults=faults, budget=budget)
            assert cad.report.degraded or cad.is_partial
            assert len(cad.pivot_values) >= 1
        except BudgetExceededError:
            pass  # acceptable: nothing was built before the deadline
        assert time.perf_counter() - t0 < 1.0

    def test_row_cap_samples_input(self):
        cad = self.build(budget=Budget(max_rows=100))
        assert any(d.phase == "input" for d in cad.report.degradations)
        assert sum(
            u.size for v in cad.pivot_values for u in cad.candidates[v]
        ) == 100

    def test_pressure_forces_greedy_topk(self):
        # a deadline far past degrade_at but not yet exceeded: ladder
        # steps down preemptively instead of waiting for the hard stop
        budget = Budget(deadline_s=10.0, degrade_at=1e-9)
        cad = self.build(budget=budget)
        assert any(
            d.phase == "topk" and d.to_mode == "greedy"
            for d in cad.report.degradations
        )

    def test_builder_level_defaults_apply(self):
        faults = FaultInjector({"cluster:p1": "crash"})
        builder = CADViewBuilder(CADViewConfig(seed=0), faults=faults)
        cad = builder.build(small_table(), pivot="pv")
        assert cad.is_partial

    def test_refine_isolates_faults_too(self):
        cad = self.build()
        faults = FaultInjector({"cluster:p0": "crash"})
        builder = CADViewBuilder(CADViewConfig(seed=0), faults=faults)
        refined = builder.refine(cad, Ne("c0", "a0"))
        assert "p0" not in refined.pivot_values
        assert refined.report.incidents[0].pivot_value == "p0"

    def test_zero_retries_budget(self):
        faults = FaultInjector({"cluster:p0": Fault("convergence", times=1)})
        budget = Budget(retries=0)
        cad = self.build(faults=faults, budget=budget)
        # no retry allowed: straight to the whole-partition rung
        assert not cad.report.retries
        assert len(cad.rows["p0"]) == 1


# ---------------------------------------------------------------- surfacing

class TestSurfacing:
    def test_explorer_carries_report_and_render_footer(self, cars):
        clean = DBExplorer(CADViewConfig(seed=11))
        clean.register("UsedCars", cars)
        victim = clean.execute(SQL).pivot_values[0]
        faults = FaultInjector({f"cluster:{victim}": "crash"})
        dbx = DBExplorer(CADViewConfig(seed=11), faults=faults)
        dbx.register("UsedCars", cars)
        cad = dbx.execute(SQL)
        assert cad.is_partial
        assert dbx.last_report is cad.report
        assert cad.report.dropped_values == [victim]
        text = dbx.render("V")
        assert "-- build report: PARTIAL" in text
        assert victim in text
        bare = dbx.render("V", show_report=False)
        assert "build report" not in bare

    def test_clean_render_has_no_footer(self, cars):
        dbx = DBExplorer(CADViewConfig(seed=11))
        dbx.register("UsedCars", cars)
        dbx.execute(SQL)
        assert "build report" not in dbx.render("V")
        assert dbx.last_report.clean

    def test_acceptance_scenario_used_cars_partial_view(self, cars):
        """ISSUE acceptance: injected clustering fault on one pivot value
        -> partial view listing exactly that incident."""
        dbx = DBExplorer(CADViewConfig(seed=11))
        dbx.register("UsedCars", cars)
        clean = dbx.execute(SQL)
        victim = clean.pivot_values[0]
        faulty = DBExplorer(
            CADViewConfig(seed=11),
            faults=FaultInjector({f"cluster:{victim}": "crash"}),
        )
        faulty.register("UsedCars", cars)
        cad = faulty.execute(SQL)
        assert set(cad.pivot_values) == set(clean.pivot_values) - {victim}
        assert len(cad.report.incidents) == 1
        assert cad.report.incidents[0].pivot_value == victim

    def test_acceptance_scenario_50ms_budget(self, cars):
        """ISSUE acceptance: 50ms budget returns (degraded) or raises a
        typed error, within 2x the deadline (+ scheduling slack)."""
        dbx = DBExplorer(
            CADViewConfig(seed=11), budget=Budget(deadline_s=0.05)
        )
        dbx.register("UsedCars", cars)
        t0 = time.perf_counter()
        try:
            cad = dbx.execute(
                "CREATE CADVIEW B AS SET pivot = Make SELECT Price "
                "FROM UsedCars LIMIT COLUMNS 5 IUNITS 3"
            )
            assert cad.report.degraded or cad.is_partial or (
                cad.report.elapsed_s <= 0.05
            )
        except BudgetExceededError:
            pass
        assert time.perf_counter() - t0 <= 2 * 0.05 + 0.05

    def test_report_as_dict_roundtrips(self):
        faults = FaultInjector({"cluster:p0": Fault("convergence", times=1)})
        builder = CADViewBuilder(CADViewConfig(seed=0), faults=faults)
        cad = builder.build(small_table(), pivot="pv")
        d = cad.report.as_dict()
        assert d["status"] == "OK"  # a retry alone is not a degradation
        assert d["retries"][0]["pivot_value"] == "p0"
        assert d["profile"]["total_s"] > 0.0

    def test_env_faults_reach_explorer(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "cluster:p0=crash")
        dbx = DBExplorer(CADViewConfig(seed=0))
        dbx.register("T", small_table())
        cad = dbx.execute(
            "CREATE CADVIEW E AS SET pivot = pv SELECT * FROM T"
        )
        assert "p0" in cad.report.dropped_values


# ------------------------------------------------------------ property test

@given(
    n_rows=st.integers(30, 300),
    pivot_card=st.integers(1, 5),
    deadline_ms=st.floats(1.0, 100.0),
    seed=st.integers(0, 1000),
)
@settings(max_examples=25, deadline=None)
def test_budgeted_build_answers_or_raises_typed(
    n_rows, pivot_card, deadline_ms, seed
):
    """The interactive contract: near-deadline answer or typed failure."""
    table = small_table(n_rows, pivot_card, seed)
    budget = Budget(deadline_s=deadline_ms / 1e3)
    builder = CADViewBuilder(CADViewConfig(seed=seed), budget=budget)
    t0 = time.perf_counter()
    try:
        cad = builder.build(table, pivot="pv")
        assert len(cad.pivot_values) >= 1
        assert set(cad.pivot_values).isdisjoint(cad.report.dropped_values)
    except (BudgetExceededError, EmptyResultError):
        pass  # the only acceptable failures
    # small tables: a generous absolute slack dominates scheduler noise
    assert time.perf_counter() - t0 <= 2 * (deadline_ms / 1e3) + 0.5
