"""Unit tests for hash equi-joins."""

import pytest

from repro.dataset import AttrKind, Attribute, Schema, Table
from repro.errors import QueryError, TypeMismatchError
from repro.query import hash_join


@pytest.fixture()
def orders():
    schema = Schema([
        Attribute("order_id", AttrKind.ORDINAL),
        Attribute("customer", AttrKind.CATEGORICAL),
        Attribute("amount", AttrKind.NUMERIC),
    ])
    return Table.from_rows(schema, [
        {"order_id": 1, "customer": "ann", "amount": 10.0},
        {"order_id": 2, "customer": "bob", "amount": 20.0},
        {"order_id": 3, "customer": "ann", "amount": 30.0},
        {"order_id": 4, "customer": None, "amount": 40.0},
        {"order_id": 5, "customer": "zoe", "amount": 50.0},
    ])


@pytest.fixture()
def customers():
    schema = Schema([
        Attribute("customer", AttrKind.CATEGORICAL),
        Attribute("city", AttrKind.CATEGORICAL),
        Attribute("amount", AttrKind.NUMERIC),  # name collision on purpose
    ])
    return Table.from_rows(schema, [
        {"customer": "ann", "city": "Paris", "amount": 1.0},
        {"customer": "bob", "city": "Lyon", "amount": 2.0},
        {"customer": "cat", "city": "Nice", "amount": 3.0},
    ])


class TestInnerJoin:
    def test_matching_rows(self, orders, customers):
        j = hash_join(orders, customers, on=("customer", "customer"))
        assert len(j) == 3  # ann x2 + bob; zoe and NULL drop
        cities = {r["order_id"]: r["city"] for r in j.iter_rows()}
        assert cities == {1.0: "Paris", 2.0: "Lyon", 3.0: "Paris"}

    def test_shared_key_column_not_duplicated(self, orders, customers):
        j = hash_join(orders, customers, on=("customer", "customer"))
        assert j.schema.names.count("customer") == 1

    def test_collision_suffixed(self, orders, customers):
        j = hash_join(orders, customers, on=("customer", "customer"))
        assert "amount" in j.schema.names
        assert "amount_r" in j.schema.names
        row = next(r for r in j.iter_rows() if r["order_id"] == 2.0)
        assert row["amount"] == 20.0 and row["amount_r"] == 2.0

    def test_one_to_many_fanout(self, orders, customers):
        # join from customers to orders: ann matches 2 orders
        j = hash_join(customers, orders, on=("customer", "customer"))
        ann = [r for r in j.iter_rows() if r["customer"] == "ann"]
        assert len(ann) == 2

    def test_null_keys_never_match(self, orders, customers):
        j = hash_join(orders, customers, on=("customer", "customer"))
        assert all(r["customer"] is not None for r in j.iter_rows())


class TestLeftJoin:
    def test_unmatched_left_kept_with_missing(self, orders, customers):
        j = hash_join(orders, customers, on=("customer", "customer"),
                      how="left")
        assert len(j) == 5
        zoe = next(r for r in j.iter_rows() if r["customer"] == "zoe")
        assert zoe["city"] is None

    def test_null_key_row_kept(self, orders, customers):
        j = hash_join(orders, customers, on=("customer", "customer"),
                      how="left")
        nulls = [r for r in j.iter_rows() if r["customer"] is None]
        assert len(nulls) == 1 and nulls[0]["city"] is None


class TestValidation:
    def test_unknown_how(self, orders, customers):
        with pytest.raises(QueryError):
            hash_join(orders, customers, on=("customer", "customer"),
                      how="outer")

    def test_kind_mismatch(self, orders, customers):
        with pytest.raises(TypeMismatchError):
            hash_join(orders, customers, on=("amount", "customer"))

    def test_unknown_key(self, orders, customers):
        with pytest.raises(KeyError):
            hash_join(orders, customers, on=("bogus", "customer"))

    def test_different_key_names(self, orders):
        other = Table.from_rows(
            Schema([
                Attribute("name", AttrKind.CATEGORICAL),
                Attribute("vip", AttrKind.CATEGORICAL),
            ]),
            [{"name": "ann", "vip": "yes"}],
        )
        j = hash_join(orders, other, on=("customer", "name"))
        assert len(j) == 2
        assert "name" in j.schema.names  # different names both kept
