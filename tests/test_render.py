"""Tests for the ASCII CAD View rendering."""

import pytest

from repro import CADViewBuilder, CADViewConfig, render_cadview
from repro.core.cadview import IUnitRef
from repro.query import QueryEngine, parse_predicate


@pytest.fixture(scope="module")
def cad(cars):
    pred = parse_predicate(
        "BodyType = SUV AND Make IN (Jeep, Chevrolet, Ford)"
    )
    result = QueryEngine.select(cars, pred)
    return CADViewBuilder(CADViewConfig(seed=2)).build(
        result, pivot="Make", name="v",
        exclude=("BodyType",),
    )


class TestRender:
    def test_contains_headers_and_values(self, cad):
        text = render_cadview(cad)
        assert "Make" in text
        assert "Compare Attrs." in text
        assert "IUnit 1" in text
        for v in cad.pivot_values:
            assert v in text

    def test_compare_attributes_listed(self, cad):
        text = render_cadview(cad)
        for attr in cad.compare_attributes:
            assert attr in text

    def test_cluster_sizes_shown(self, cad):
        text = render_cadview(cad, show_sizes=True)
        u = cad.rows[cad.pivot_values[0]][0]
        assert f"(n={u.size})" in text

    def test_sizes_hidden(self, cad):
        text = render_cadview(cad, show_sizes=False)
        assert "(n=" not in text

    def test_highlight_marks(self, cad):
        v = cad.pivot_values[0]
        ref = IUnitRef(v, 1)
        text = render_cadview(cad, highlight=[ref])
        u = cad.iunit(v, 1)
        assert f"*(n={u.size})*" in text

    def test_rows_aligned(self, cad):
        """Every line has the same width (proper grid)."""
        text = render_cadview(cad, cell_width=24)
        widths = {len(line) for line in text.splitlines()}
        assert len(widths) == 1

    def test_long_labels_wrap_not_truncate(self, cad):
        text = render_cadview(cad, cell_width=14)
        # Wrangler Unlimited is longer than 12 chars: it must still be
        # findable across wrapped lines
        squashed = "".join(text.split())
        assert "Wrangler" in squashed

    def test_narrow_cells_still_grid(self, cad):
        text = render_cadview(cad, cell_width=12)
        widths = {len(line) for line in text.splitlines()}
        assert len(widths) == 1
