"""Tests for the CAD View object, config, builder pipeline and profile."""

import numpy as np
import pytest

from repro import (
    CADViewBuilder, CADViewConfig, EmptyResultError, IUnitRef,
)
from repro.errors import CADViewError, UnknownAttributeError
from repro.iunits import AttributePreference, iunit_similarity
from repro.query import QueryEngine, parse_predicate

MARY = (
    "Mileage BETWEEN 10K AND 30K AND Transmission = Automatic "
    "AND BodyType = SUV AND Make IN (Jeep, Toyota, Honda, Ford, Chevrolet)"
)


@pytest.fixture(scope="module")
def result(cars):
    return QueryEngine.select(cars, parse_predicate(MARY))


@pytest.fixture(scope="module")
def cad(result):
    builder = CADViewBuilder(CADViewConfig(compare_limit=5, iunits_k=3, seed=4))
    return builder.build(
        result, pivot="Make", pinned=("Price",), name="CompareMakes",
        exclude=("BodyType", "Transmission", "Mileage"),
    )


class TestConfig:
    def test_effective_l_default(self):
        cfg = CADViewConfig(iunits_k=3)
        assert cfg.effective_l() == 5  # max(k+2, 1.5k)

    def test_effective_l_respects_explicit(self):
        assert CADViewConfig(generated_l=12).effective_l() == 12

    def test_adaptive_l_cuts_on_broad_results(self):
        cfg = CADViewConfig(iunits_k=6, generated_l=15, adaptive_l=True)
        assert cfg.effective_l(40_000) == 6
        assert cfg.effective_l(1_000) == 15

    def test_with_(self):
        cfg = CADViewConfig().with_(iunits_k=9)
        assert cfg.iunits_k == 9
        assert CADViewConfig().iunits_k == 3


class TestBuilder:
    def test_structure(self, cad):
        assert cad.pivot_attribute == "Make"
        assert set(cad.pivot_values) == {
            "Jeep", "Toyota", "Honda", "Ford", "Chevrolet",
        }
        assert len(cad.compare_attributes) == 5
        assert cad.compare_attributes[0] == "Price"  # pinned first

    def test_rows_have_at_most_k_units(self, cad):
        for value in cad.pivot_values:
            assert 1 <= len(cad.rows[value]) <= 3

    def test_uids_are_one_based_consecutive(self, cad):
        for value in cad.pivot_values:
            assert [u.uid for u in cad.rows[value]] == list(
                range(1, len(cad.rows[value]) + 1)
            )

    def test_iunits_cover_only_their_pivot_value(self, cad, result):
        for value in cad.pivot_values:
            total = sum(u.size for u in cad.candidates[value])
            expected = result.value_counts("Make")[value]
            assert total == expected

    def test_model_among_compare_attributes(self, cad):
        """Model functionally determines Make: it must be selected."""
        assert "Model" in cad.compare_attributes

    def test_excluded_not_selected(self, cad):
        assert "BodyType" not in cad.compare_attributes
        assert "Transmission" not in cad.compare_attributes

    def test_displays_nonempty(self, cad):
        for unit in cad.all_iunits():
            assert any(unit.display[a] for a in cad.compare_attributes)

    def test_profile_buckets_populated(self, cad):
        p = cad.profile
        assert p.compare_attrs_s > 0
        assert p.iunits_s > 0
        assert p.others_s > 0
        assert p.total_s == pytest.approx(
            p.compare_attrs_s + p.iunits_s + p.others_s
        )

    def test_deterministic_given_seed(self, result):
        cfg = CADViewConfig(seed=9)
        a = CADViewBuilder(cfg).build(result, pivot="Make")
        b = CADViewBuilder(cfg).build(result, pivot="Make")
        for v in a.pivot_values:
            assert [u.size for u in a.rows[v]] == [u.size for u in b.rows[v]]

    def test_requested_pivot_values_subset(self, result):
        cad = CADViewBuilder().build(
            result, pivot="Make", pivot_values=["Jeep", "Ford"]
        )
        assert cad.pivot_values == ("Jeep", "Ford")

    def test_requested_absent_value_raises(self, result):
        with pytest.raises(EmptyResultError):
            CADViewBuilder().build(
                result, pivot="Make", pivot_values=["Lada"]
            )

    def test_empty_result_raises(self, result):
        empty = result.filter(np.zeros(len(result), bool))
        with pytest.raises(EmptyResultError):
            CADViewBuilder().build(empty, pivot="Make")

    def test_unknown_pivot_raises(self, result):
        with pytest.raises(UnknownAttributeError):
            CADViewBuilder().build(result, pivot="bogus")

    def test_preference_changes_ranking(self, result):
        by_size = CADViewBuilder(CADViewConfig(seed=5)).build(
            result, pivot="Make"
        )
        pref_builder = CADViewBuilder(
            CADViewConfig(seed=5),
            preference=None,
        )
        cad2 = pref_builder.build(result, pivot="Make")
        # same config+seed: identical; now with ascending price preference
        price_pref = AttributePreference(cad2.view, "Price", ascending=True)
        builder3 = CADViewBuilder(CADViewConfig(seed=5), preference=price_pref)
        cad3 = builder3.build(result, pivot="Make")
        # the first IUnit under ascending price is the cheapest cluster
        for v in cad3.pivot_values:
            scores = [price_pref.score(u) for u in cad3.rows[v]]
            assert scores == sorted(scores, reverse=True)

    def test_fs_sample_keeps_top_attribute(self, result):
        plain = CADViewBuilder(CADViewConfig(seed=3)).build(result, "Make")
        sampled = CADViewBuilder(
            CADViewConfig(seed=3, fs_sample=800)
        ).build(result, "Make")
        assert plain.compare_attributes[0] == sampled.compare_attributes[0]

    def test_cluster_sample_caps_partition(self, result):
        cad = CADViewBuilder(
            CADViewConfig(seed=3, cluster_sample=100)
        ).build(result, "Make")
        for v in cad.pivot_values:
            assert sum(u.size for u in cad.candidates[v]) <= 100


class TestCADViewOperations:
    def test_iunit_lookup(self, cad):
        u = cad.iunit(cad.pivot_values[0], 1)
        assert u.uid == 1

    def test_iunit_bad_id(self, cad):
        with pytest.raises(CADViewError):
            cad.iunit(cad.pivot_values[0], 99)

    def test_row_unknown_value(self, cad):
        with pytest.raises(CADViewError):
            cad.row("Lada")

    def test_similar_iunits_threshold_and_sorting(self, cad):
        value = cad.pivot_values[0]
        hits = cad.similar_iunits(value, 1, threshold=0.0)
        sims = [s for _, s in hits]
        assert sims == sorted(sims, reverse=True)
        # threshold=0 returns everything except the anchor
        total_units = len(cad.all_iunits())
        assert len(hits) == total_units - 1

    def test_similar_iunits_excludes_self(self, cad):
        value = cad.pivot_values[0]
        hits = cad.similar_iunits(value, 1, threshold=0.0)
        assert all(
            not (ref.pivot_value == value and ref.iunit_id == 1)
            for ref, _ in hits
        )

    def test_similar_iunits_scores_match_algorithm1(self, cad):
        value = cad.pivot_values[0]
        anchor = cad.iunit(value, 1)
        for ref, sim in cad.similar_iunits(value, 1, threshold=0.0)[:5]:
            other = cad.iunit(ref.pivot_value, ref.iunit_id)
            assert sim == pytest.approx(iunit_similarity(anchor, other))

    def test_value_distance_self_zero(self, cad):
        v = cad.pivot_values[0]
        assert cad.value_distance(v, v) == 0.0

    def test_reorder_by_similarity(self, cad):
        v = cad.pivot_values[0]
        reordered = cad.reorder_by_similarity(v)
        assert reordered.pivot_values[0] == v
        dists = [
            reordered.value_distance(v, w)
            for w in reordered.pivot_values[1:]
        ]
        assert dists == sorted(dists)
        # original untouched
        assert cad.pivot_values != reordered.pivot_values or True

    def test_reorder_unknown_value(self, cad):
        with pytest.raises(CADViewError):
            cad.reorder_by_similarity("Lada")

    def test_tau_uses_config(self, cad):
        assert cad.tau == pytest.approx(0.7 * len(cad.compare_attributes))

    def test_chevrolet_ford_more_similar_than_jeep(self, cad):
        """The paper's qualitative claim: Chevrolet's SUV lineup is more
        like Ford's than like Jeep's."""
        d_ford = cad.value_distance("Chevrolet", "Ford")
        d_jeep = cad.value_distance("Chevrolet", "Jeep")
        assert d_ford <= d_jeep


class TestIUnitRef:
    def test_str(self):
        assert str(IUnitRef("Ford", 2)) == "(Ford, 2)"
