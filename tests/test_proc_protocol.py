"""The supervisor<->worker frame protocol, byte by byte.

Every validation branch of :mod:`repro.serve.proc.protocol` — torn
frames, bad magic, wrong version, unknown kinds, non-JSON payloads —
plus the happy path over a real ``multiprocessing`` pipe, the same
transport the supervision tree uses.
"""

from __future__ import annotations

import json
from multiprocessing import get_context

import pytest

from repro.serve.proc.protocol import (
    FRAME_BYE,
    FRAME_CANCEL,
    FRAME_DRAIN,
    FRAME_HEARTBEAT,
    FRAME_READY,
    FRAME_REQUEST,
    FRAME_RESPONSE,
    PROTOCOL_VERSION,
    ProtocolError,
    decode_frame,
    encode_frame,
    recv_frame,
    send_frame,
)

ALL_KINDS = (
    FRAME_REQUEST, FRAME_CANCEL, FRAME_DRAIN,
    FRAME_READY, FRAME_HEARTBEAT, FRAME_RESPONSE, FRAME_BYE,
)


class TestRoundTrip:
    @pytest.mark.parametrize("kind", ALL_KINDS)
    def test_every_kind_round_trips(self, kind):
        payload = {"id": "r-1", "sql": "SELECT Make FROM data", "n": 3}
        got_kind, got = decode_frame(encode_frame(kind, payload))
        assert got_kind == kind
        assert got == payload

    def test_empty_payload_round_trips(self):
        kind, payload = decode_frame(encode_frame(FRAME_DRAIN, {}))
        assert kind == FRAME_DRAIN
        assert payload == {}

    def test_unicode_payload_round_trips(self):
        payload = {"error": "résultat ≠ attendu", "reason": "drain"}
        _, got = decode_frame(encode_frame(FRAME_RESPONSE, payload))
        assert got == payload

    def test_non_json_values_are_stringified_not_fatal(self):
        # default=str in the encoder: an exotic value degrades to its
        # str() instead of killing the worker with a TypeError mid-send
        _, got = decode_frame(
            encode_frame(FRAME_RESPONSE, {"x": frozenset([1])})
        )
        assert got == {"x": str(frozenset([1]))}


class TestValidation:
    def test_unknown_kind_rejected_at_encode(self):
        with pytest.raises(ProtocolError, match="unknown frame kind"):
            encode_frame(99, {})

    def test_unknown_kind_rejected_at_decode(self):
        frame = bytearray(encode_frame(FRAME_READY, {}))
        frame[3] = 99  # the kind byte
        with pytest.raises(ProtocolError, match="unknown frame kind"):
            decode_frame(bytes(frame))

    def test_short_frame(self):
        with pytest.raises(ProtocolError, match="short frame"):
            decode_frame(b"RP\x01")

    def test_bad_magic(self):
        frame = bytearray(encode_frame(FRAME_READY, {}))
        frame[0:2] = b"XX"
        with pytest.raises(ProtocolError, match="bad frame magic"):
            decode_frame(bytes(frame))

    def test_version_mismatch(self):
        frame = bytearray(encode_frame(FRAME_READY, {}))
        frame[2] = PROTOCOL_VERSION + 1
        with pytest.raises(ProtocolError, match="protocol version"):
            decode_frame(bytes(frame))

    def test_torn_frame_truncated_payload(self):
        # a worker that died mid-send leaves fewer payload bytes than
        # the header declares — must be detected, never half-decoded
        frame = encode_frame(FRAME_RESPONSE, {"id": "r-1", "status": "ok"})
        with pytest.raises(ProtocolError, match="torn frame"):
            decode_frame(frame[:-5])

    def test_torn_frame_extra_bytes(self):
        frame = encode_frame(FRAME_RESPONSE, {"id": "r-1"})
        with pytest.raises(ProtocolError, match="torn frame"):
            decode_frame(frame + b"garbage")

    def test_payload_must_be_json(self):
        body = b"not json at all"
        import struct

        header = struct.pack(
            ">2sBBI", b"RP", PROTOCOL_VERSION, FRAME_READY, len(body)
        )
        with pytest.raises(ProtocolError, match="not valid JSON"):
            decode_frame(header + body)

    def test_payload_must_be_an_object(self):
        body = json.dumps([1, 2, 3]).encode()
        import struct

        header = struct.pack(
            ">2sBBI", b"RP", PROTOCOL_VERSION, FRAME_READY, len(body)
        )
        with pytest.raises(ProtocolError, match="not a JSON object"):
            decode_frame(header + body)

    def test_protocol_error_is_a_serve_error(self):
        # the supervisor funnels torn frames into the same worker-death
        # path as ServeError-based failures
        from repro.errors import ServeError

        assert issubclass(ProtocolError, ServeError)


class TestOverPipe:
    def test_send_and_recv_over_a_spawn_context_pipe(self):
        parent, child = get_context("spawn").Pipe()
        try:
            send_frame(parent, FRAME_REQUEST, {"id": "r-7", "sql": "x"})
            kind, payload = recv_frame(child)
            assert kind == FRAME_REQUEST
            assert payload == {"id": "r-7", "sql": "x"}
            send_frame(child, FRAME_RESPONSE, {"id": "r-7", "status": "ok"})
            kind, payload = recv_frame(parent)
            assert kind == FRAME_RESPONSE
            assert payload["status"] == "ok"
        finally:
            parent.close()
            child.close()

    def test_recv_after_peer_close_raises_eoferror(self):
        parent, child = get_context("spawn").Pipe()
        parent.close()
        try:
            with pytest.raises(EOFError):
                recv_frame(child)
        finally:
            child.close()
