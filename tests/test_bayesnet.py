"""Unit tests for the Chow-Liu tree."""

import numpy as np
import pytest

from repro.dataset import AttrKind, Attribute, Schema, Table
from repro.discretize import Discretizer
from repro.errors import QueryError
from repro.features import ChowLiuTree


@pytest.fixture()
def chain_view():
    """A -> B -> C chain: A,B strongly coupled, B,C strongly coupled,
    A,C only weakly (through B)."""
    rng = np.random.default_rng(0)
    n = 1500
    a = rng.integers(0, 2, n)
    flip_b = rng.random(n) < 0.05
    b = np.where(flip_b, 1 - a, a)
    flip_c = rng.random(n) < 0.05
    c = np.where(flip_c, 1 - b, b)
    noise = rng.integers(0, 3, n)
    schema = Schema([
        Attribute(x, AttrKind.CATEGORICAL) for x in ("A", "B", "C", "N")
    ])
    table = Table.from_columns(schema, {
        "A": [str(v) for v in a],
        "B": [str(v) for v in b],
        "C": [str(v) for v in c],
        "N": [str(v) for v in noise],
    })
    return Discretizer().fit(table)


class TestStructure:
    def test_recovers_chain(self, chain_view):
        tree = ChowLiuTree.fit(chain_view, attributes=("A", "B", "C"),
                               root="A")
        edges = {frozenset((u, v)) for u, v, _ in tree.edges}
        assert edges == {frozenset(("A", "B")), frozenset(("B", "C"))}

    def test_noise_attaches_weakly(self, chain_view):
        tree = ChowLiuTree.fit(chain_view, root="A")
        # N's edge must be the weakest in the tree
        n_strength = max(
            w for u, v, w in tree.edges if "N" in (u, v)
        )
        others = [w for u, v, w in tree.edges if "N" not in (u, v)]
        assert all(n_strength < w for w in others)

    def test_neighbors(self, chain_view):
        tree = ChowLiuTree.fit(chain_view, attributes=("A", "B", "C"),
                               root="A")
        assert tree.neighbors("B") == ("A", "C")
        assert tree.neighbors("A") == ("B",)

    def test_edge_strength(self, chain_view):
        tree = ChowLiuTree.fit(chain_view, attributes=("A", "B", "C"),
                               root="A")
        assert tree.edge_strength("A", "B") > 0.5
        assert tree.edge_strength("A", "C") == 0.0  # not a tree edge

    def test_order_root_first(self, chain_view):
        tree = ChowLiuTree.fit(chain_view, root="B")
        assert tree.order[0] == "B"
        assert set(tree.order) == {"A", "B", "C", "N"}

    def test_mushroom_class_odor_edge(self, mushroom):
        """The generator's strongest dependency must become a tree edge."""
        view = Discretizer().fit(mushroom)
        tree = ChowLiuTree.fit(view, root="class")
        assert "odor" in tree.neighbors("class")

    def test_validation(self, chain_view):
        with pytest.raises(QueryError):
            ChowLiuTree.fit(chain_view, attributes=("A",))
        with pytest.raises(QueryError):
            ChowLiuTree.fit(chain_view, root="Z")


class TestInference:
    def test_root_marginal_sums_to_one(self, chain_view):
        tree = ChowLiuTree.fit(chain_view, root="A")
        marginal = tree.conditional("A")
        assert marginal.sum() == pytest.approx(1.0)

    def test_conditional_rows_sum_to_one(self, chain_view):
        tree = ChowLiuTree.fit(chain_view, root="A")
        for code in range(2):
            p = tree.conditional("B", parent_code=code)
            assert p.sum() == pytest.approx(1.0)

    def test_conditional_reflects_coupling(self, chain_view):
        tree = ChowLiuTree.fit(chain_view, attributes=("A", "B"), root="A")
        code_a0 = chain_view.code_of("A", "0")
        code_b0 = chain_view.code_of("B", "0")
        p = tree.conditional("B", parent_code=code_a0)
        assert p[code_b0] > 0.85

    def test_conditional_requires_parent_code(self, chain_view):
        tree = ChowLiuTree.fit(chain_view, root="A")
        child = tree.order[1]
        with pytest.raises(QueryError):
            tree.conditional(child)
        with pytest.raises(QueryError):
            tree.conditional(child, parent_code=99)

    def test_loglik_better_than_shuffled_model(self, chain_view):
        tree = ChowLiuTree.fit(chain_view, attributes=("A", "B", "C"),
                               root="A")
        ll = tree.loglik(chain_view)
        # an independence-ish tree rooted elsewhere but trained on
        # shuffled B should fit worse; approximate by comparing against
        # the chain likelihood under an N-rooted tree over (A, N)
        weak = ChowLiuTree.fit(chain_view, attributes=("A", "N", "C"),
                               root="N")
        # per-attribute comparison is apples-to-oranges; instead check
        # the chain ll beats the factorized upper bound of random data
        n = len(chain_view)
        independent_ll = 3 * n * np.log2(0.5)  # three fair coins
        assert ll > independent_ll

    def test_samples_match_marginals(self, chain_view):
        tree = ChowLiuTree.fit(chain_view, attributes=("A", "B"), root="A")
        samples = tree.sample_codes(4000, np.random.default_rng(1))
        frac_a0 = float((samples["A"] == 0).mean())
        marginal = tree.conditional("A")
        assert frac_a0 == pytest.approx(marginal[0], abs=0.04)

    def test_samples_preserve_coupling(self, chain_view):
        tree = ChowLiuTree.fit(chain_view, attributes=("A", "B"), root="A")
        s = tree.sample_codes(4000, np.random.default_rng(2))
        agree = float((s["A"] == s["B"]).mean())
        code_a0 = chain_view.code_of("A", "0")
        code_b0 = chain_view.code_of("B", "0")
        if code_a0 != code_b0:
            agree = 1 - agree  # codes may be permuted between attrs
        assert agree > 0.85

    def test_unknown_attribute(self, chain_view):
        tree = ChowLiuTree.fit(chain_view, root="A")
        with pytest.raises(QueryError):
            tree.neighbors("Z")
