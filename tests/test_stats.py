"""Tests for the mixed model, LRT, and the display-effect analysis."""

import numpy as np
import pytest

from repro.errors import QueryError
from repro.stats import (
    display_effect, fit_mixed_lm, likelihood_ratio_test,
)


def simulate(effect, sigma_u=1.0, sigma_e=0.5, n_users=8, seed=0):
    rng = np.random.default_rng(seed)
    users = np.repeat(np.arange(n_users), 2)
    x = np.tile([0.0, 1.0], n_users)
    u = rng.normal(0, sigma_u, n_users)
    y = 10.0 + effect * x + u[users] + rng.normal(0, sigma_e, len(x))
    X = np.column_stack([np.ones_like(x), x])
    return y, X, users, x


class TestFitMixedLM:
    def test_recovers_fixed_effect(self):
        y, X, users, _ = simulate(effect=-5.0, seed=1)
        res = fit_mixed_lm(y, X, users)
        est, se = res.fixed_effect(1)
        assert est == pytest.approx(-5.0, abs=3 * se)
        assert se > 0

    def test_recovers_variance_partition(self):
        y, X, users, _ = simulate(
            effect=0.0, sigma_u=2.0, sigma_e=0.3, n_users=60, seed=2
        )
        res = fit_mixed_lm(y, X, users)
        assert res.sigma_u > res.sigma_e  # user variance dominates

    def test_zero_random_effect(self):
        y, X, users, _ = simulate(effect=1.0, sigma_u=0.0, seed=3)
        res = fit_mixed_lm(y, X, users)
        assert res.sigma_u < res.sigma_e

    def test_counts(self):
        y, X, users, _ = simulate(effect=0.0)
        res = fit_mixed_lm(y, X, users)
        assert res.n_obs == 16 and res.n_groups == 8

    def test_matches_ols_loglik_when_no_grouping(self):
        """With every observation its own group, the model reduces to
        OLS with two variance components; loglik must match the OLS ML
        log-likelihood within tolerance."""
        rng = np.random.default_rng(4)
        n = 40
        x = rng.random(n)
        y = 2.0 + 3.0 * x + rng.normal(0, 0.4, n)
        X = np.column_stack([np.ones(n), x])
        res = fit_mixed_lm(y, X, groups=np.arange(n))
        beta_ols, *_ = np.linalg.lstsq(X, y, rcond=None)
        resid = y - X @ beta_ols
        s2 = float(resid @ resid) / n
        ll_ols = -0.5 * n * (np.log(2 * np.pi * s2) + 1)
        assert res.loglik == pytest.approx(ll_ols, abs=0.05)
        assert res.beta == pytest.approx(beta_ols, abs=1e-3)

    def test_shape_validation(self):
        with pytest.raises(QueryError):
            fit_mixed_lm([1.0, 2.0], np.ones((3, 1)), [0, 1])
        with pytest.raises(QueryError):
            fit_mixed_lm([1.0, 2.0], np.ones((2, 1)), [0])


class TestLRT:
    def test_strong_effect_significant(self):
        y, X, users, x = simulate(effect=-5.0, seed=5)
        lrt = likelihood_ratio_test(y, X, X[:, :1], users)
        assert lrt.df == 1
        assert lrt.chi2 > 10
        assert lrt.p_value < 0.01

    def test_null_effect_not_significant(self):
        y, X, users, _ = simulate(effect=0.0, seed=6)
        lrt = likelihood_ratio_test(y, X, X[:, :1], users)
        assert lrt.p_value > 0.05

    def test_chi2_nonnegative(self):
        y, X, users, _ = simulate(effect=0.0, seed=7)
        lrt = likelihood_ratio_test(y, X, X[:, :1], users)
        assert lrt.chi2 >= 0.0

    def test_nesting_enforced(self):
        y, X, users, _ = simulate(effect=1.0)
        with pytest.raises(QueryError):
            likelihood_ratio_test(y, X, X, users)

    def test_str(self):
        y, X, users, _ = simulate(effect=-3.0)
        s = str(likelihood_ratio_test(y, X, X[:, :1], users))
        assert "chi2(1)" in s and "p =" in s


class TestDisplayEffect:
    def test_paper_style_output(self):
        rng = np.random.default_rng(8)
        users = [f"U{i}" for i in range(8) for _ in range(2)]
        displays = ["Solr", "TPFacet"] * 8
        y = [
            12 + (-6 if d == "TPFacet" else 0) + rng.normal(0, 1)
            for d in displays
        ]
        eff = display_effect(users, displays, y)
        assert eff.effect == pytest.approx(-6.0, abs=1.5)
        assert eff.p_value < 0.01
        assert eff.baseline_mean > eff.treatment_mean
        assert "chi2(1)" in str(eff)

    def test_validations(self):
        with pytest.raises(QueryError):
            display_effect(["a"], ["Solr"], [1.0, 2.0])
        with pytest.raises(QueryError):
            display_effect(["a", "b"], ["Solr", "Solr"], [1.0, 2.0])
        with pytest.raises(QueryError):
            display_effect(
                ["a", "b"], ["Solr", "TPFacet"], [1.0, 2.0],
                treatment="Other",
            )


class TestMixedLMRetry:
    """A transient optimizer failure gets one seeded retry."""

    def _patched(self, monkeypatch, fail_first_n):
        import repro.stats.mixedlm as m

        real = m.minimize
        calls = {"n": 0}

        def flaky(fun, x0, **kwargs):
            calls["n"] += 1
            if calls["n"] <= fail_first_n:
                res = real(fun, x0, **kwargs)
                res.fun = float("nan")
                return res
            return real(fun, x0, **kwargs)

        monkeypatch.setattr(m, "minimize", flaky)
        return calls

    def test_retry_then_succeed(self, monkeypatch):
        calls = self._patched(monkeypatch, fail_first_n=1)
        y, X, users, _ = simulate(effect=-5.0, seed=1)
        res = fit_mixed_lm(y, X, users)
        assert calls["n"] == 2  # one failure, one successful retry
        est, se = res.fixed_effect(1)
        assert est == pytest.approx(-5.0, abs=3 * se)

    def test_exhausted_raises_with_cause(self, monkeypatch):
        from repro.errors import ConvergenceError

        calls = self._patched(monkeypatch, fail_first_n=10)
        y, X, users, _ = simulate(effect=-5.0, seed=1)
        with pytest.raises(ConvergenceError, match="seeded retry") as exc:
            fit_mixed_lm(y, X, users)
        assert calls["n"] == 2  # no endless retrying
        assert isinstance(exc.value.__cause__, ConvergenceError)
        assert "attempt 1" in str(exc.value.__cause__)

    def test_seed_changes_retry_start(self, monkeypatch):
        import repro.stats.mixedlm as m

        starts = []
        real = m.minimize

        def recording(fun, x0, **kwargs):
            starts.append(np.array(x0))
            res = real(fun, x0, **kwargs)
            if len(starts) == 1:
                res.fun = float("nan")
            return res

        monkeypatch.setattr(m, "minimize", recording)
        y, X, users, _ = simulate(effect=-5.0, seed=1)
        fit_mixed_lm(y, X, users, seed=3)
        assert len(starts) == 2
        assert not np.allclose(starts[0], starts[1])
