"""End-to-end tests for the DBExplorer statement facade."""

import pytest

from repro import CADView, CADViewConfig, DBExplorer, Table
from repro.errors import CADViewError, QueryError

PAPER_CADVIEW = """
    CREATE CADVIEW CompareMakes AS
    SET pivot = Make
    SELECT Price
    FROM UsedCars
    WHERE Mileage BETWEEN 10K AND 30K AND
    Transmission = Automatic AND BodyType = SUV AND
    (Make = Jeep OR Make = Toyota OR Make = Honda OR
    Make = Ford OR Make = Chevrolet)
    LIMIT COLUMNS 5 IUNITS 3
"""


@pytest.fixture(scope="module")
def dbx(cars):
    d = DBExplorer(CADViewConfig(seed=11))
    d.register("UsedCars", cars)
    return d


@pytest.fixture(scope="module")
def compare_makes(dbx):
    return dbx.execute(PAPER_CADVIEW)


class TestSelect:
    def test_select_where(self, dbx):
        t = dbx.execute("SELECT * FROM UsedCars WHERE Make = Jeep LIMIT 5")
        assert isinstance(t, Table)
        assert len(t) == 5
        assert set(t.distinct("Make")) == {"Jeep"}

    def test_select_columns(self, dbx):
        t = dbx.execute("SELECT Make, Price FROM UsedCars LIMIT 3")
        assert t.schema.names == ("Make", "Price")

    def test_select_order_by(self, dbx):
        t = dbx.execute(
            "SELECT Price FROM UsedCars ORDER BY Price DESC LIMIT 10"
        )
        prices = [r["Price"] for r in t.iter_rows()]
        assert prices == sorted(prices, reverse=True)

    def test_unknown_table(self, dbx):
        with pytest.raises(QueryError):
            dbx.execute("SELECT * FROM Nope")


class TestCreateCadView:
    def test_paper_statement(self, compare_makes):
        assert isinstance(compare_makes, CADView)
        assert compare_makes.name == "CompareMakes"
        assert compare_makes.pivot_attribute == "Make"
        assert len(compare_makes.compare_attributes) == 5
        assert compare_makes.compare_attributes[0] == "Price"
        assert set(compare_makes.pivot_values) == {
            "Jeep", "Toyota", "Honda", "Ford", "Chevrolet",
        }
        for v in compare_makes.pivot_values:
            assert len(compare_makes.rows[v]) <= 3

    def test_view_registered(self, dbx, compare_makes):
        assert dbx.view("CompareMakes") is not None

    def test_unknown_view(self, dbx):
        with pytest.raises(CADViewError):
            dbx.view("Nope")

    def test_render(self, dbx, compare_makes):
        text = dbx.render("CompareMakes")
        assert "Chevrolet" in text and "IUnit 1" in text

    def test_hidden_attribute_surfaces_in_view(self, dbx, compare_makes):
        """Limitation 2: Engine is not queriable but shows in the CAD
        View, and its IUnit values (V4/V6/V8) are visible."""
        assert "Engine" in compare_makes.compare_attributes
        text = dbx.render("CompareMakes")
        assert "[V6]" in text or "[V4]" in text or "[V8]" in text

    def test_order_by_price_sorts_iunits(self, dbx):
        cad = dbx.execute(
            "CREATE CADVIEW ByPrice AS SET pivot = Make SELECT Price "
            "FROM UsedCars WHERE BodyType = SUV AND "
            "(Make = Jeep OR Make = Ford) IUNITS 3 ORDER BY Price ASC"
        )
        import numpy as np
        mids = np.array(
            [(b.lo + b.hi) / 2 for b in cad.view.bins("Price")]
        )
        for v in cad.pivot_values:
            means = []
            for u in cad.rows[v]:
                d = np.asarray(u.distributions["Price"], float)
                means.append(float(d @ mids / d.sum()))
            assert means == sorted(means)

    def test_order_by_categorical_raises(self, dbx):
        with pytest.raises(CADViewError):
            dbx.execute(
                "CREATE CADVIEW Bad AS SET pivot = Make SELECT Model "
                "FROM UsedCars WHERE BodyType = SUV ORDER BY Model ASC"
            )

    def test_order_by_non_compare_attribute_raises(self, dbx):
        with pytest.raises(CADViewError):
            dbx.execute(
                "CREATE CADVIEW Bad2 AS SET pivot = Make SELECT Price "
                "FROM UsedCars WHERE BodyType = SUV LIMIT COLUMNS 2 "
                "ORDER BY FuelEconomy ASC"
            )


class TestSimilaritySearch:
    def test_highlight_similar(self, dbx, compare_makes):
        hits = dbx.execute(
            "HIGHLIGHT SIMILAR IUNITS IN CompareMakes "
            "WHERE SIMILARITY(Chevrolet, 1) > 1.0"
        )
        assert isinstance(hits, list)
        for ref, sim in hits:
            assert sim >= 1.0
            assert ref.pivot_value in compare_makes.pivot_values

    def test_highlight_respects_threshold(self, dbx):
        low = dbx.execute(
            "HIGHLIGHT SIMILAR IUNITS IN CompareMakes "
            "WHERE SIMILARITY(Chevrolet, 1) > 0.5"
        )
        high = dbx.execute(
            "HIGHLIGHT SIMILAR IUNITS IN CompareMakes "
            "WHERE SIMILARITY(Chevrolet, 1) > 4.5"
        )
        assert len(high) <= len(low)

    def test_reorder_rows(self, dbx):
        view = dbx.execute(
            "REORDER ROWS IN CompareMakes ORDER BY SIMILARITY(Chevrolet) DESC"
        )
        assert view.pivot_values[0] == "Chevrolet"
        # the reordering is persisted under the view name
        assert dbx.view("CompareMakes").pivot_values[0] == "Chevrolet"

    def test_reorder_asc(self, dbx):
        view = dbx.execute(
            "REORDER ROWS IN CompareMakes ORDER BY SIMILARITY(Ford) ASC"
        )
        assert view.pivot_values[0] == "Ford"

    def test_highlight_unknown_view(self, dbx):
        with pytest.raises(CADViewError):
            dbx.execute(
                "HIGHLIGHT SIMILAR IUNITS IN Nope "
                "WHERE SIMILARITY(x, 1) > 1"
            )
