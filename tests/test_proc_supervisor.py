"""The supervision tree under fire: crash, hang, backoff, drain, chaos.

These tests spawn real worker subprocesses (spawn context), so each one
keeps the dataset tiny and the heartbeat fast.  The property test at
the bottom is the chaos harness in miniature: random fault schedules
over the three ``proc.*`` sites, with one invariant — every submitted
statement reaches a terminal state, no matter which workers die when.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import QueryCancelledError, ServeError, WorkerCrashError
from repro.serve.proc import (
    PIPE_DROP_EXIT,
    ProcServeConfig,
    ProcSupervisor,
    WorkerSpec,
    WORKER_CRASH_EXIT,
)

ROWS = 400  # enough structure to build tiny CAD Views, fast to generate


def _spec(**kwargs) -> WorkerSpec:
    kwargs.setdefault("dataset", "usedcars")
    kwargs.setdefault("rows", ROWS)
    kwargs.setdefault("seed", 7)
    return WorkerSpec(**kwargs)


def _config(**kwargs) -> ProcServeConfig:
    kwargs.setdefault("shards", 1)
    kwargs.setdefault("breaker", None)
    kwargs.setdefault("heartbeat_interval_s", 0.05)
    kwargs.setdefault("heartbeat_timeout_s", 0.5)
    kwargs.setdefault("restart_backoff_base_s", 0.02)
    kwargs.setdefault("restart_backoff_cap_s", 0.3)
    return ProcServeConfig(**kwargs)


CREATE = (
    "CREATE CADVIEW v AS SET pivot = Make SELECT Price FROM data "
    "LIMIT COLUMNS 3 IUNITS 2"
)


class TestHappyPath:
    def test_statements_execute_and_drain_clean(self):
        with ProcSupervisor(_spec(), _config(shards=2)) as sup:
            assert sup.wait_ready(60)
            tickets = [
                sup.submit("SELECT Make FROM data", session="s0"),
                sup.submit(CREATE, session="s1"),
                sup.submit("SHOW CADVIEWS", session="s2"),
            ]
            for ticket in tickets:
                ticket.wait(60)
                assert ticket.outcome == "ok", ticket.error
            assert tickets[2].result_payload == ["v"]
        report = sup.drain()  # idempotent after close()
        assert report["clean"]
        assert all(code == 0 for code in report["exitcodes"].values())

    def test_submit_after_drain_rejected(self):
        sup = ProcSupervisor(_spec(), _config())
        try:
            assert sup.wait_ready(60)
            sup.begin_drain()
            with pytest.raises(ServeError):
                sup.submit("SELECT Make FROM data")
        finally:
            sup.close(wait=False)


class TestCrashRecovery:
    def test_crash_during_build_recovers(self):
        """An injected worker crash mid-statement must be invisible to
        the client: the supervisor restarts the shard and resubmits."""
        spec = _spec(faults_spec="proc.worker_crash:0=crash*1")
        with ProcSupervisor(spec, _config()) as sup:
            assert sup.wait_ready(60)
            ticket = sup.submit(CREATE, session="s0", fault_index=0)
            ticket.wait(120)
            assert ticket.outcome == "ok", ticket.error
            assert ticket.proc_attempts == 1
            chaos = sup.chaos_stats()
            assert chaos["deaths"] == {"crash": 1}
            assert chaos["resubmits"] == 1
            assert chaos["wedged"] == 0

    def test_pipe_drop_recovers(self):
        spec = _spec(faults_spec="proc.pipe_drop:0=crash*1")
        with ProcSupervisor(spec, _config()) as sup:
            assert sup.wait_ready(60)
            ticket = sup.submit(
                "SELECT Price FROM data", session="s0", fault_index=0
            )
            ticket.wait(120)
            assert ticket.outcome == "ok", ticket.error
            assert sup.chaos_stats()["deaths"] == {"pipe_drop": 1}

    def test_exhausted_proc_retries_fail_the_ticket(self):
        """A statement that kills every incarnation it touches must end
        as a terminal failure carrying WorkerCrashError, not a wedge."""
        spec = _spec(faults_spec="proc.worker_crash:0=crash*10")
        config = _config(proc_retries=2)
        with ProcSupervisor(spec, config) as sup:
            assert sup.wait_ready(60)
            ticket = sup.submit(
                "SELECT Make FROM data", session="s0", fault_index=0
            )
            ticket.wait(120)
            assert ticket.outcome == "failed"
            assert isinstance(ticket.error, WorkerCrashError)
            assert sup.chaos_stats()["wedged"] == 0

    def test_catalog_journal_survives_the_crash(self):
        """Views created before a crash must exist after the restart:
        the journal replays on the fresh incarnation, fault-free."""
        spec = _spec(faults_spec="proc.worker_crash:1=crash*1")
        with ProcSupervisor(spec, _config()) as sup:
            assert sup.wait_ready(60)
            created = sup.submit(CREATE, session="s0", fault_index=0)
            created.wait(60)
            assert created.outcome == "ok", created.error
            crashed = sup.submit(
                "SELECT Make FROM data", session="s1", fault_index=1
            )
            crashed.wait(120)
            assert crashed.outcome == "ok", crashed.error
            listing = sup.submit(
                "SHOW CADVIEWS", session="s2", fault_index=2
            )
            listing.wait(60)
            assert listing.outcome == "ok", listing.error
            assert listing.result_payload == ["v"]


class TestHangDetection:
    def test_hang_detected_by_heartbeat(self):
        """A worker sleeping with its heartbeat suppressed is caught by
        the missed-beat detector, SIGKILLed, and its statement retried
        on the fresh incarnation."""
        spec = _spec(faults_spec="proc.worker_hang:0=sleep:5.0*1")
        with ProcSupervisor(spec, _config()) as sup:
            assert sup.wait_ready(60)
            ticket = sup.submit(
                "SELECT Make FROM data", session="s0", fault_index=0
            )
            ticket.wait(120)
            assert ticket.outcome == "ok", ticket.error
            chaos = sup.chaos_stats()
            assert chaos["deaths"] == {"hang": 1}
            assert chaos["resubmits"] == 1


class TestRestartBackoff:
    def test_consecutive_deaths_grow_the_delay_to_the_cap(self):
        """Three deaths with no intervening success: delays follow
        base * 2^k, clamped at the cap, never beyond it."""
        spec = _spec(faults_spec="proc.worker_crash:0=crash*3")
        config = _config(
            proc_retries=5,
            restart_backoff_base_s=0.05,
            restart_backoff_cap_s=0.12,
        )
        with ProcSupervisor(spec, config) as sup:
            assert sup.wait_ready(60)
            ticket = sup.submit(
                "SELECT Make FROM data", session="s0", fault_index=0
            )
            ticket.wait(120)
            assert ticket.outcome == "ok", ticket.error
            chaos = sup.chaos_stats()
            delays = chaos["restart_delays"]
            assert delays == [0.05, 0.1, 0.12]
            assert chaos["max_restart_delay_s"] <= 0.12


class TestDrain:
    def test_drain_with_in_flight_statement(self):
        """Drain during a long build: the statement is cancelled through
        the CancelToken path, every worker exits 0, nothing is orphaned."""
        spec = _spec(
            rows=2_000,
            faults_spec="proc.worker_hang:0=sleep:3.0*1",
        )
        # hang detection off: the sleep stands in for a long build the
        # drain has to cancel, not a hang the monitor should kill
        config = _config(heartbeat_timeout_s=60.0, drain_grace_s=0.2)
        sup = ProcSupervisor(spec, config)
        try:
            assert sup.wait_ready(60)
            ticket = sup.submit(CREATE, session="s0", fault_index=0)
            report = sup.drain(grace_s=0.2)
            ticket.wait(30)
            assert ticket.outcome in ("failed", "ok")
            if ticket.outcome == "failed":
                assert isinstance(
                    ticket.error, (QueryCancelledError, WorkerCrashError)
                )
            # no orphans: every child process is reaped
            assert sup.chaos_stats()["wedged"] == 0
            procs = [
                s.handle.process
                for s in sup._shards if s.handle is not None
            ]
            assert all(not p.is_alive() for p in procs)
            assert report["cancelled"] in (0, 1)
        finally:
            sup.close(wait=False)

    def test_drain_flushes_the_worklog(self, tmp_path):
        """Per-ticket worklog records (with the proc= envelope) land on
        disk before drain returns."""
        from repro.obs import WorkLogWriter, read_worklog

        path = str(tmp_path / "proc.worklog.jsonl")
        writer = WorkLogWriter(path)
        writer.session(dataset="usedcars", rows=ROWS, seed=7)
        sup = ProcSupervisor(_spec(), _config(), worklog=writer)
        try:
            assert sup.wait_ready(60)
            ticket = sup.submit("SELECT Make FROM data", session="s0")
            ticket.wait(60)
            assert ticket.outcome == "ok"
            sup.drain(grace_s=2.0)
        finally:
            sup.close(wait=False)
            writer.close()
        records = read_worklog(path)
        statements = [r for r in records if r["kind"] == "statement"]
        assert len(statements) == 1
        assert statements[0]["status"] == "ok"
        proc = statements[0]["proc"]
        assert proc["shard"] == 0
        assert proc["proc_attempts"] == 0


class TestChaosDeterminism:
    def test_chaos_run_matches_fault_free_digests(self):
        """The PR-5 guarantee, extended across process death: a chaos
        run's per-statement digests are byte-identical to a run of the
        same workload with no chaos at all."""
        sqls = [
            "SELECT Make FROM data",
            CREATE,
            "SELECT Price FROM data",
            "SHOW CADVIEWS",
            "SELECT Year FROM data",
        ]

        def run(faults_spec):
            spec = _spec(faults_spec=faults_spec)
            with ProcSupervisor(spec, _config(shards=2)) as sup:
                assert sup.wait_ready(60)
                tickets = [
                    sup.submit(sql, session=f"s{i}", fault_index=i)
                    for i, sql in enumerate(sqls)
                ]
                out = []
                for ticket in tickets:
                    ticket.wait(120)
                    out.append(
                        (ticket.outcome, ticket.degradations,
                         ticket.result_payload)
                    )
                return out

        calm = run(None)
        chaotic = run(
            "proc.worker_crash:1=crash*1,proc.worker_hang:2=sleep:2.0*1"
        )
        assert calm == chaotic

    # Spawning subprocess fleets per example is expensive; a handful of
    # random schedules still exercises the cross-product of fault site,
    # target statement and shard count far beyond the named tests.
    @settings(
        max_examples=4,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        faults=st.lists(
            st.tuples(
                st.sampled_from(
                    ["proc.worker_crash", "proc.pipe_drop"]
                ),
                st.integers(min_value=0, max_value=3),
            ),
            min_size=0,
            max_size=2,
            unique_by=lambda f: f[1],
        ),
        shards=st.integers(min_value=1, max_value=2),
    )
    def test_every_ticket_reaches_a_terminal_state(self, faults, shards):
        spec_text = ",".join(
            f"{site}:{index}=crash*1" for site, index in faults
        )
        spec = _spec(faults_spec=spec_text or None)
        sqls = [
            "SELECT Make FROM data",
            "SELECT Price FROM data",
            CREATE,
            "SHOW CADVIEWS",
        ]
        with ProcSupervisor(spec, _config(shards=shards)) as sup:
            assert sup.wait_ready(60)
            tickets = [
                sup.submit(sql, session=f"s{i}", fault_index=i)
                for i, sql in enumerate(sqls)
            ]
            for ticket in tickets:
                assert ticket.wait(120), "ticket never became terminal"
                assert ticket.outcome in ("ok", "degraded", "failed")
            assert sup.chaos_stats()["wedged"] == 0


class TestExitCodes:
    def test_fault_exit_codes_are_distinct_and_nonzero(self):
        # the supervisor infers pipe_drop vs crash vs clean drain from
        # the exit code; the three must never collide
        assert WORKER_CRASH_EXIT != PIPE_DROP_EXIT
        assert WORKER_CRASH_EXIT != 0
        assert PIPE_DROP_EXIT != 0


class TestTelemetryPlane:
    def test_explain_analyze_ships_real_phase_timings(self):
        """EXPLAIN ANALYZE under --procs must report the worker's span
        tree, not silent zeros: the worker renders the analysis locally
        and ships the text in its RESPONSE."""
        with ProcSupervisor(_spec(), _config()) as sup:
            assert sup.wait_ready(60)
            ticket = sup.submit("EXPLAIN ANALYZE " + CREATE, session="s")
            assert ticket.wait(60)
            assert ticket.outcome == "ok", ticket.error
            assert isinstance(ticket.result, str)
            assert "cadview.build" in ticket.result

    def test_worker_telemetry_merges_and_conserves(self):
        from repro.obs import MetricsRegistry, Tracer

        tracer = Tracer("serve.session")
        with ProcSupervisor(
            _spec(), _config(shards=2), tracer=tracer,
            metrics=MetricsRegistry(),  # isolate from other tests
        ) as sup:
            assert sup.wait_ready(60)
            tickets = [
                sup.submit("SELECT Make FROM data", session=f"s{i}")
                for i in range(4)
            ]
            for ticket in tickets:
                assert ticket.wait(60)
                assert ticket.outcome == "ok", ticket.error
            sup.drain()
            stats = sup.telemetry.stats()
            assert stats["frames"] > 0
            assert stats["workers_seen"] == 2
            snap = sup.telemetry.cluster_registry().snapshot()
            counters = snap["counters"]
            # conservation: every admitted statement counted exactly once
            completed = sum(
                v for k, v in counters.items()
                if k.startswith("proc.s") and k.endswith(".completed")
                and ".g" not in k
            )
            assert completed == len(tickets)
            assert counters["proc.telemetry.dropped"] == 0.0
            # worker registries arrive relabeled by shard/incarnation
            assert any(
                ".g0.worker.statements.ok" in k for k in counters
            )
            # lifecycle events from both sides of the pipe
            kinds = {e.get("kind") for e in sup.telemetry.events()}
            assert "worker.spawn" in kinds
            assert "worker.ready" in kinds

    def test_stitched_trace_links_worker_spans_by_request_id(
        self, tmp_path
    ):
        import json as _json

        from repro.obs import Tracer
        from repro.obs.hub import write_stitched_chrome_trace

        tracer = Tracer("serve.session")
        with ProcSupervisor(_spec(), _config(), tracer=tracer) as sup:
            assert sup.wait_ready(60)
            ticket = sup.submit("SELECT Make FROM data", session="s")
            assert ticket.wait(60)
            sup.drain()
            trees = sup.telemetry.span_trees()
        tracer.finish()
        assert any(
            t["tree"]["name"] == "worker.startup" for t in trees
        )
        path = tmp_path / "stitched.json"
        write_stitched_chrome_trace(str(path), tracer.root, trees)
        events = _json.loads(path.read_text())["traceEvents"]
        pids = {e["pid"] for e in events if e["ph"] != "M"}
        assert len(pids) >= 2  # supervisor + worker lanes
        serve_ids = {
            e["args"].get("request_id")
            for e in events if e["name"] == "serve.request"
        }
        worker_ids = {
            e["args"].get("request_id")
            for e in events if e["name"] == "worker.request"
        }
        assert worker_ids and worker_ids <= serve_ids

    def test_stats_snapshot_is_self_contained(self):
        from repro.obs import MetricsRegistry

        with ProcSupervisor(
            _spec(), _config(), metrics=MetricsRegistry()
        ) as sup:
            assert sup.wait_ready(60)
            ticket = sup.submit("SELECT Make FROM data", session="s")
            assert ticket.wait(60)
            snap = sup.stats_snapshot()
        assert snap["submitted"] == 1
        (shard,) = snap["shards"]
        assert shard["shard"] == 0
        assert shard["restarts"] == 0
        assert "latency_ms" in shard and shard["latency_ms"]["count"] == 1
        # the embedded cluster metrics make the snapshot offline-gateable
        assert "counters" in snap["metrics"]
        assert "dropped_total" in snap["telemetry"]


class TestDurableCatalog:
    """``state_dir``: mutations survive whole-supervisor restarts."""

    def test_catalog_survives_supervisor_restart(self, tmp_path):
        state = str(tmp_path / "state")
        with ProcSupervisor(_spec(), _config(state_dir=state)) as sup:
            assert sup.wait_ready(60)
            created = sup.submit(CREATE, session="s0")
            created.wait(60)
            assert created.outcome == "ok", created.error
        # a brand-new supervisor — new PID in production — rebuilds the
        # catalog from the snapshot + WAL before any worker boots
        with ProcSupervisor(_spec(), _config(state_dir=state)) as sup:
            assert sup.wait_ready(60)
            listing = sup.submit("SHOW CADVIEWS", session="s1")
            listing.wait(60)
            assert listing.outcome == "ok", listing.error
            assert listing.result_payload == ["v"]
            snap = sup.stats_snapshot()
            assert snap["recovery"]["views"] == {"v": 0}
            assert snap["wal"] is not None

    def test_journal_growth_warns_once(self, tmp_path, capsys):
        from repro.obs import MetricsRegistry

        reorder = "REORDER ROWS IN v ORDER BY SIMILARITY(Ford) DESC"
        metrics = MetricsRegistry()
        with ProcSupervisor(
            _spec(),
            _config(
                state_dir=str(tmp_path / "state"),
                journal_warn_len=1,
                wal_snapshot_every=100,  # keep compaction out of the way
            ),
            metrics=metrics,
        ) as sup:
            assert sup.wait_ready(60)
            for i, sql in enumerate([CREATE, reorder, reorder]):
                ticket = sup.submit(sql, session=f"s{i}")
                ticket.wait(60)
                assert ticket.outcome == "ok", ticket.error
            assert metrics.gauge("proc.s0.journal_len").value == 3.0
        err = capsys.readouterr().err
        # the latch fires on the 2nd entry and stays quiet on the 3rd
        assert err.count("catalog journal grew") == 1

    def test_snapshot_compaction_resets_journal_gauge(self, tmp_path):
        from repro.obs import MetricsRegistry

        metrics = MetricsRegistry()
        with ProcSupervisor(
            _spec(),
            _config(state_dir=str(tmp_path / "state")),
            metrics=metrics,
        ) as sup:
            assert sup.wait_ready(60)
            for i, sql in enumerate([CREATE, "DROP CADVIEW v"]):
                ticket = sup.submit(sql, session=f"s{i}")
                ticket.wait(60)
                assert ticket.outcome == "ok", ticket.error
            assert metrics.gauge("proc.s0.journal_len").value == 2.0
        # close() takes a final snapshot; CREATE+DROP compact to nothing
        assert metrics.gauge("proc.s0.journal_len").value == 0.0

    def test_wal_failure_fail_stops_the_supervisor(self, tmp_path):
        """After a WAL failure the supervisor refuses new work instead
        of acknowledging mutations it can no longer make durable."""
        from repro.errors import DurabilityError

        with ProcSupervisor(
            _spec(), _config(state_dir=str(tmp_path / "state"))
        ) as sup:
            assert sup.wait_ready(60)
            # sever the WAL out from under the supervisor: every
            # subsequent commit attempt fails like a dead disk would
            sup._wal.close(final_snapshot=False)
            ticket = sup.submit(CREATE, session="s0")
            ticket.wait(60)
            assert ticket.outcome == "failed"
            assert "durability failure" in str(ticket.error)
            with pytest.raises(DurabilityError):
                sup.submit("SELECT Make FROM data", session="s1")
