"""Unit tests for repro.dataset.schema."""

import pytest

from repro.dataset import AttrKind, Attribute, Schema
from repro.errors import SchemaError, UnknownAttributeError


def make_schema():
    return Schema([
        Attribute("Make", AttrKind.CATEGORICAL),
        Attribute("Price", AttrKind.NUMERIC),
        Attribute("Year", AttrKind.ORDINAL),
        Attribute("Engine", AttrKind.CATEGORICAL, queriable=False),
    ])


class TestAttrKind:
    def test_categorical_is_not_numeric(self):
        assert not AttrKind.CATEGORICAL.is_numeric

    def test_numeric_kinds(self):
        assert AttrKind.NUMERIC.is_numeric
        assert AttrKind.ORDINAL.is_numeric


class TestAttribute:
    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError):
            Attribute("", AttrKind.NUMERIC)

    def test_kind_must_be_attrkind(self):
        with pytest.raises(SchemaError):
            Attribute("x", "numeric")

    def test_flags(self):
        a = Attribute("Make", AttrKind.CATEGORICAL)
        assert a.is_categorical and not a.is_numeric
        b = Attribute("Price", AttrKind.NUMERIC)
        assert b.is_numeric and not b.is_categorical

    def test_frozen(self):
        a = Attribute("Make", AttrKind.CATEGORICAL)
        with pytest.raises(AttributeError):
            a.name = "Other"


class TestSchema:
    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError, match="duplicate"):
            Schema([
                Attribute("x", AttrKind.NUMERIC),
                Attribute("x", AttrKind.NUMERIC),
            ])

    def test_len_iter_contains(self):
        s = make_schema()
        assert len(s) == 4
        assert [a.name for a in s] == ["Make", "Price", "Year", "Engine"]
        assert "Make" in s and "Nope" not in s

    def test_getitem_by_name_and_index(self):
        s = make_schema()
        assert s["Price"].kind is AttrKind.NUMERIC
        assert s[0].name == "Make"

    def test_getitem_unknown_raises_with_available(self):
        s = make_schema()
        with pytest.raises(UnknownAttributeError) as exc:
            s["Nope"]
        assert "Nope" in str(exc.value)
        assert "Make" in str(exc.value)

    def test_unknown_attribute_is_keyerror(self):
        s = make_schema()
        with pytest.raises(KeyError):
            s["Nope"]

    def test_names_views(self):
        s = make_schema()
        assert s.names == ("Make", "Price", "Year", "Engine")
        assert s.categorical_names == ("Make", "Engine")
        assert s.numeric_names == ("Price", "Year")

    def test_queriable_and_hidden(self):
        s = make_schema()
        assert s.queriable_names == ("Make", "Price", "Year")
        assert s.hidden_names == ("Engine",)

    def test_index_of(self):
        s = make_schema()
        assert s.index_of("Year") == 2
        with pytest.raises(UnknownAttributeError):
            s.index_of("Nope")

    def test_subset_preserves_order(self):
        s = make_schema()
        sub = s.subset(["Year", "Make"])
        assert sub.names == ("Year", "Make")

    def test_subset_unknown_raises(self):
        with pytest.raises(UnknownAttributeError):
            make_schema().subset(["Nope"])

    def test_require(self):
        s = make_schema()
        s.require(["Make", "Price"])  # no raise
        with pytest.raises(UnknownAttributeError):
            s.require(["Make", "Nope"])

    def test_with_queriable_restricts(self):
        s = make_schema().with_queriable(["Make"])
        assert s.queriable_names == ("Make",)
        assert set(s.hidden_names) == {"Price", "Year", "Engine"}

    def test_with_queriable_none_opens_all(self):
        s = make_schema().with_queriable(None)
        assert s.queriable_names == s.names

    def test_with_queriable_unknown_raises(self):
        with pytest.raises(UnknownAttributeError):
            make_schema().with_queriable(["Nope"])

    def test_equality_and_hash(self):
        assert make_schema() == make_schema()
        assert hash(make_schema()) == hash(make_schema())
        other = Schema([Attribute("x", AttrKind.NUMERIC)])
        assert make_schema() != other

    def test_repr_mentions_kinds(self):
        assert "Price:numeric" in repr(make_schema())
