"""Unit tests for the command-line interface."""

import importlib.util
import json
from pathlib import Path

import pytest

from repro.cli import (
    EXIT_BUDGET_EXHAUSTED,
    EXIT_BUILD_FAILED,
    EXIT_OK,
    EXIT_USAGE,
    build_parser,
    main,
)


def _load_check_trace():
    """Import benchmarks/check_trace.py (not an installed package)."""
    path = Path(__file__).parent.parent / "benchmarks" / "check_trace.py"
    spec = importlib.util.spec_from_file_location("check_trace", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_gen_data_args(self):
        args = build_parser().parse_args(
            ["gen-data", "usedcars", "--rows", "100", "--out", "x.csv"]
        )
        assert args.dataset == "usedcars"
        assert args.rows == 100


class TestCommands:
    def test_gen_data_roundtrip(self, tmp_path, capsys):
        out = str(tmp_path / "cars.csv")
        rc = main(["gen-data", "usedcars", "--rows", "200", "--out", out])
        assert rc == 0
        assert "wrote 200 rows" in capsys.readouterr().out

        # the CSV can feed the other commands
        rc = main([
            "cadview", "--dataset", "usedcars", "--csv", out,
            "--sql", "SELECT Make FROM data LIMIT 2",
        ])
        assert rc == 0

    def test_cadview_statement(self, capsys):
        rc = main([
            "cadview", "--dataset", "usedcars", "--rows", "2000",
            "--sql",
            "CREATE CADVIEW v AS SET pivot = Make SELECT Price FROM data "
            "WHERE BodyType = SUV AND Make IN (Jeep, Ford) IUNITS 2",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "IUnit 1" in out and "Jeep" in out

    def test_cadview_select(self, capsys):
        rc = main([
            "cadview", "--dataset", "mushroom", "--rows", "500",
            "--sql", "SELECT class FROM data LIMIT 3",
        ])
        assert rc == 0
        assert "3 row(s)" in capsys.readouterr().out

    def test_parse_error_returns_nonzero(self, capsys):
        rc = main([
            "cadview", "--dataset", "usedcars", "--rows", "500",
            "--sql", "FROBNICATE everything",
        ])
        assert rc == 1
        assert "error" in capsys.readouterr().err

    def test_deps_command(self, capsys):
        rc = main(["deps", "--dataset", "usedcars", "--rows", "1500"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Model -> Make" in out

    def test_profile_command(self, capsys):
        rc = main(["profile", "--dataset", "usedcars", "--rows", "3000"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "naive" in out and "optimized" in out


class TestExitCodes:
    """The documented exit-code contract: 0 ok, 1 usage, 2 build
    failure, 3 budget exhausted with nothing built."""

    def test_usage_error_is_1(self, capsys):
        rc = main(["cadview"])  # missing required --sql
        assert rc == EXIT_USAGE
        assert "required" in capsys.readouterr().err

    def test_bad_faults_spec_is_1_on_stderr(self, capsys):
        rc = main([
            "cadview", "--rows", "300", "--faults", "not-a-spec",
            "--sql", "SELECT Make FROM data LIMIT 1",
        ])
        assert rc == EXIT_USAGE
        captured = capsys.readouterr()
        assert "error" in captured.err and "fault" in captured.err
        assert "error" not in captured.out

    def test_build_failure_is_2(self, capsys):
        rc = main([
            "cadview", "--rows", "300",
            "--sql",
            "CREATE CADVIEW v AS SET pivot = Make SELECT Price "
            "FROM data WHERE Price < 0",  # empty result set
        ])
        assert rc == EXIT_BUILD_FAILED
        assert "error" in capsys.readouterr().err

    def test_budget_exhausted_is_3(self, capsys):
        rc = main([
            "cadview", "--rows", "2000", "--budget-ms", "0.0001",
            "--sql",
            "CREATE CADVIEW v AS SET pivot = Make SELECT Price "
            "FROM data IUNITS 2",
        ])
        assert rc == EXIT_BUDGET_EXHAUSTED
        assert "budget" in capsys.readouterr().err

    def test_success_is_0(self):
        rc = main([
            "cadview", "--rows", "300",
            "--sql", "SELECT Make FROM data LIMIT 1",
        ])
        assert rc == EXIT_OK


class TestObservabilityFlags:
    def test_trace_and_metrics_written_and_valid(self, tmp_path, capsys):
        trace = tmp_path / "trace.json"
        metrics = tmp_path / "metrics.json"
        rc = main([
            "cadview", "--rows", "2000",
            "--sql",
            "CREATE CADVIEW v AS SET pivot = Make SELECT Price FROM data "
            "WHERE BodyType = SUV IUNITS 2",
            "--trace", str(trace), "--metrics", str(metrics),
        ])
        assert rc == EXIT_OK
        checker = _load_check_trace()
        assert checker.validate_trace(str(trace)) == []
        assert checker.validate_metrics(str(metrics)) == []
        # the trace holds the whole build pipeline
        names = {
            e["name"] for e in
            json.loads(trace.read_text())["traceEvents"]
        }
        assert "cadview.build" in names and "kmeans" in names
        # the metrics snapshot saw the build
        snap = json.loads(metrics.read_text())
        assert snap["counters"]["build.total"] >= 1

    def test_trace_written_even_when_build_fails(self, tmp_path, capsys):
        trace = tmp_path / "trace.json"
        rc = main([
            "cadview", "--rows", "300",
            "--sql",
            "CREATE CADVIEW v AS SET pivot = Make SELECT Price "
            "FROM data WHERE Price < 0",
            "--trace", str(trace),
        ])
        assert rc == EXIT_BUILD_FAILED
        checker = _load_check_trace()
        assert checker.validate_trace(str(trace)) == []

    def test_explain_analyze_through_cli(self, capsys):
        rc = main([
            "cadview", "--rows", "2000",
            "--sql",
            "EXPLAIN ANALYZE CREATE CADVIEW v AS SET pivot = Make "
            "SELECT Price FROM data WHERE BodyType = SUV IUNITS 2",
        ])
        assert rc == EXIT_OK
        out = capsys.readouterr().out
        assert "cadview.build" in out
        assert "bucket reconciliation" in out

    def test_check_trace_cli_rejects_garbage(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{\"traceEvents\": \"nope\"}")
        checker = _load_check_trace()
        assert checker.main(["--trace", str(bad)]) == 1

    def test_worklog_written_through_cli(self, tmp_path, capsys):
        worklog = tmp_path / "w.jsonl"
        rc = main([
            "cadview", "--rows", "2000",
            "--sql",
            "CREATE CADVIEW v AS SET pivot = Make SELECT Price FROM data "
            "WHERE BodyType = SUV IUNITS 2",
            "--worklog", str(worklog),
        ])
        assert rc == EXIT_OK
        checker = _load_check_trace()
        assert checker.validate_worklog(str(worklog)) == []
        lines = [
            json.loads(line)
            for line in worklog.read_text().splitlines()
        ]
        assert lines[0]["kind"] == "session"
        assert lines[0]["command"] == "cadview"
        assert lines[1]["statement_kind"] == "create_cadview"
        assert lines[1]["status"] == "ok"

    def test_artifacts_survive_analysis_gate_abort(self, tmp_path, capsys):
        """The analyzer rejecting a statement must not lose artifacts.

        A pre-execution AnalysisError aborts before any build span
        opens; the trace, metrics snapshot and worklog must be written
        anyway (with the failure recorded), and the exit code stays 1.
        """
        trace = tmp_path / "trace.json"
        metrics = tmp_path / "metrics.json"
        worklog = tmp_path / "w.jsonl"
        rc = main([
            "cadview", "--rows", "300",
            # contradictory range: rejected by the gate, never executed
            "--sql", "SELECT Price FROM data "
                     "WHERE Price > 9000 AND Price < 5000",
            "--trace", str(trace), "--metrics", str(metrics),
            "--worklog", str(worklog),
        ])
        assert rc == EXIT_USAGE
        assert "error" in capsys.readouterr().err
        checker = _load_check_trace()
        assert checker.validate_trace(str(trace)) == []
        assert checker.validate_metrics(str(metrics)) == []
        assert checker.validate_worklog(str(worklog)) == []
        # the worklog names the failure
        record = [
            json.loads(line)
            for line in worklog.read_text().splitlines()
        ][-1]
        assert record["status"] == "analysis_error"
        assert "QA" in record["error"]
        # the session span carries the error annotation
        events = json.loads(trace.read_text())["traceEvents"]
        notes = [e for e in events if e.get("cat") == "error"]
        assert notes and "AnalysisError" in str(notes[0])

    def test_worklog_written_when_table_load_fails(self, tmp_path, capsys):
        worklog = tmp_path / "w.jsonl"
        rc = main([
            "cadview", "--csv", str(tmp_path / "missing.csv"),
            "--sql", "SELECT Make FROM data LIMIT 1",
            "--worklog", str(worklog),
        ])
        assert rc == EXIT_USAGE
        # no statement ever ran, but the session header is on disk
        lines = [
            json.loads(line)
            for line in worklog.read_text().splitlines()
        ]
        assert [r["kind"] for r in lines] == ["session"]


class TestReplayCommand:
    SESSION = str(
        Path(__file__).parent.parent
        / "examples" / "session_nba.worklog.jsonl"
    )

    def test_replay_canned_session_prints_percentiles(self, capsys):
        rc = main([
            "replay", self.SESSION, "--budget-ms", "0", "--rows", "2000",
        ])
        assert rc == EXIT_OK
        out = capsys.readouterr().out
        assert "p50" in out and "p95" in out and "p99" in out
        assert "create_cadview" in out
        assert "analysis_error=1" in out

    def test_replay_json_report(self, capsys):
        rc = main([
            "replay", self.SESSION, "--rows", "2000", "--json",
        ])
        assert rc == EXIT_OK
        report = json.loads(capsys.readouterr().out)
        assert report["statements"] == 17
        assert report["statuses"]["analysis_error"] == 1
        assert "create_cadview" in report["by_kind"]

    def test_replay_under_budget_degrades_not_dies(self, capsys):
        rc = main([
            "replay", self.SESSION, "--rows", "2000",
            "--budget-ms", "1",
        ])
        # statement failures are measured, not raised: still exit 0
        assert rc == EXIT_OK
        out = capsys.readouterr().out
        assert "budget_exhausted" in out or "degradations:" in out

    def test_replay_refuses_self_capture(self, tmp_path, capsys):
        rc = main([
            "replay", self.SESSION, "--rows", "2000",
            "--worklog", self.SESSION,
        ])
        assert rc == EXIT_USAGE
        assert "into itself" in capsys.readouterr().err

    def test_replay_without_statements_is_usage_error(
        self, tmp_path, capsys
    ):
        empty = tmp_path / "empty.jsonl"
        empty.write_text(json.dumps(
            {"kind": "session", "dataset": "usedcars", "rows": 100}
        ) + "\n")
        rc = main(["replay", str(empty)])
        assert rc == EXIT_USAGE
        assert "no statement records" in capsys.readouterr().err

    def test_concurrent_replay_verifies_against_sequential(self, capsys):
        rc = main([
            "replay", self.SESSION, "--rows", "1000",
            "--concurrency", "4", "--verify-sequential",
        ])
        assert rc == EXIT_OK
        out = capsys.readouterr().out
        assert "byte-identical" in out

    def test_concurrent_replay_json_report(self, capsys):
        rc = main([
            "replay", self.SESSION, "--rows", "1000",
            "--concurrency", "2", "--json",
        ])
        assert rc == EXIT_OK
        report = json.loads(capsys.readouterr().out)
        assert report["concurrency"] == 2
        assert report["statements"] == 17
        assert set(report["outcomes"]) <= {
            "ok", "degraded", "rejected", "failed"
        }

    def test_concurrent_replay_rejects_bad_concurrency(self, capsys):
        rc = main([
            "replay", self.SESSION, "--rows", "1000",
            "--concurrency", "0",
        ])
        assert rc == EXIT_USAGE


class TestServeCommand:
    SESSION = TestReplayCommand.SESSION

    def test_serve_requires_stress(self, capsys):
        rc = main(["serve", self.SESSION, "--rows", "500"])
        assert rc == EXIT_USAGE
        assert "stress" in capsys.readouterr().err

    def test_stress_run_reports_outcomes(self, capsys):
        rc = main([
            "serve", self.SESSION, "--stress", "--rows", "500",
            "--workers", "2", "--queue-limit", "2",
        ])
        assert rc == EXIT_OK
        out = capsys.readouterr().out
        assert "concurrent replay" in out
        assert "outcomes:" in out

    def test_stress_under_faults_never_wrong_answers(
        self, tmp_path, capsys
    ):
        metrics = tmp_path / "m.json"
        rc = main([
            "serve", self.SESSION, "--stress", "--rows", "500",
            "--workers", "2", "--deadline-ms", "2000",
            "--faults", "cluster=convergence*1,serve.slow_worker=crash*1",
            "--metrics", str(metrics),
        ])
        assert rc == EXIT_OK
        report = json.loads(
            metrics.read_text()
        )
        assert report["counters"]["serve.admitted"] >= 17


class TestMaxBadRows:
    HEADER = (
        "Make,Model,BodyType,Price,Mileage,Year,Engine,Drivetrain,"
        "Transmission,Color,FuelEconomy"
    )
    GOOD = "Ford,F-150,Truck,30000,40000,2015,V6,AWD,Automatic,Red,20"
    BAD = "Ford,F-150,Truck,30000,40000,cheap,V6,AWD,Automatic,Red,20"

    def _write(self, tmp_path, *rows):
        path = tmp_path / "cars.csv"
        path.write_text("\n".join((self.HEADER,) + rows) + "\n")
        return str(path)

    def test_bad_row_fails_with_location(self, tmp_path, capsys):
        csv = self._write(tmp_path, self.GOOD, self.BAD)
        rc = main([
            "cadview", "--dataset", "usedcars", "--csv", csv,
            "--sql", "SELECT Make FROM data LIMIT 1",
        ])
        assert rc == EXIT_USAGE
        err = capsys.readouterr().err
        assert "row 2" in err and "Year" in err

    def test_max_bad_rows_quarantines_and_warns(self, tmp_path, capsys):
        csv = self._write(tmp_path, self.GOOD, self.BAD, self.GOOD)
        rc = main([
            "cadview", "--dataset", "usedcars", "--csv", csv,
            "--max-bad-rows", "1",
            "--sql", "SELECT Make FROM data LIMIT 5",
        ])
        assert rc == EXIT_OK
        captured = capsys.readouterr()
        assert "skipped bad row" in captured.err
        assert "row 2" in captured.err


class TestShowVariants:
    def test_describe_through_cli(self, capsys):
        rc = main([
            "cadview", "--dataset", "usedcars", "--rows", "500",
            "--sql", "DESCRIBE data",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Engine  categorical  hidden" in out

    def test_show_cadviews_through_cli(self, capsys):
        rc = main([
            "cadview", "--dataset", "usedcars", "--rows", "500",
            "--sql", "SHOW CADVIEWS",
        ])
        assert rc == 0
        assert "empty result" in capsys.readouterr().out
