"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_gen_data_args(self):
        args = build_parser().parse_args(
            ["gen-data", "usedcars", "--rows", "100", "--out", "x.csv"]
        )
        assert args.dataset == "usedcars"
        assert args.rows == 100


class TestCommands:
    def test_gen_data_roundtrip(self, tmp_path, capsys):
        out = str(tmp_path / "cars.csv")
        rc = main(["gen-data", "usedcars", "--rows", "200", "--out", out])
        assert rc == 0
        assert "wrote 200 rows" in capsys.readouterr().out

        # the CSV can feed the other commands
        rc = main([
            "cadview", "--dataset", "usedcars", "--csv", out,
            "--sql", "SELECT Make FROM data LIMIT 2",
        ])
        assert rc == 0

    def test_cadview_statement(self, capsys):
        rc = main([
            "cadview", "--dataset", "usedcars", "--rows", "2000",
            "--sql",
            "CREATE CADVIEW v AS SET pivot = Make SELECT Price FROM data "
            "WHERE BodyType = SUV AND Make IN (Jeep, Ford) IUNITS 2",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "IUnit 1" in out and "Jeep" in out

    def test_cadview_select(self, capsys):
        rc = main([
            "cadview", "--dataset", "mushroom", "--rows", "500",
            "--sql", "SELECT class FROM data LIMIT 3",
        ])
        assert rc == 0
        assert "3 row(s)" in capsys.readouterr().out

    def test_parse_error_returns_nonzero(self, capsys):
        rc = main([
            "cadview", "--dataset", "usedcars", "--rows", "500",
            "--sql", "FROBNICATE everything",
        ])
        assert rc == 1
        assert "error" in capsys.readouterr().err

    def test_deps_command(self, capsys):
        rc = main(["deps", "--dataset", "usedcars", "--rows", "1500"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Model -> Make" in out

    def test_profile_command(self, capsys):
        rc = main(["profile", "--dataset", "usedcars", "--rows", "3000"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "naive" in out and "optimized" in out


class TestShowVariants:
    def test_describe_through_cli(self, capsys):
        rc = main([
            "cadview", "--dataset", "usedcars", "--rows", "500",
            "--sql", "DESCRIBE data",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Engine  categorical  hidden" in out

    def test_show_cadviews_through_cli(self, capsys):
        rc = main([
            "cadview", "--dataset", "usedcars", "--rows", "500",
            "--sql", "SHOW CADVIEWS",
        ])
        assert rc == 0
        assert "empty result" in capsys.readouterr().out
