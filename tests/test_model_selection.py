"""Unit tests for cluster-count selection."""

import numpy as np
import pytest

from repro.clustering import select_num_clusters
from repro.errors import QueryError


def blobs(k, n=120, seed=0, spread=0.25):
    rng = np.random.default_rng(seed)
    centers = rng.uniform(-10, 10, (k, 2))
    return np.vstack([
        rng.normal(c, spread, (n, 2)) for c in centers
    ])


class TestSilhouette:
    def test_recovers_three_blobs(self):
        X = blobs(3, seed=1)
        choice = select_num_clusters(X, candidates=range(2, 7),
                                     method="silhouette", seed=1)
        assert choice.best_k == 3

    def test_recovers_five_blobs(self):
        X = blobs(5, seed=2)
        choice = select_num_clusters(X, candidates=range(2, 9),
                                     method="silhouette", seed=2)
        assert choice.best_k == 5

    def test_scores_trace_complete(self):
        X = blobs(3, seed=3)
        choice = select_num_clusters(X, candidates=(2, 3, 4), seed=0)
        assert [k for k, _ in choice.scores] == [2, 3, 4]


class TestElbow:
    def test_elbow_near_true_k(self):
        X = blobs(4, seed=4)
        choice = select_num_clusters(X, candidates=range(2, 10),
                                     method="elbow", seed=4)
        assert choice.best_k in (3, 4, 5)

    def test_method_recorded(self):
        X = blobs(2, seed=5)
        choice = select_num_clusters(X, candidates=(2, 3), method="elbow")
        assert choice.method == "elbow"


class TestValidation:
    def test_unknown_method(self):
        with pytest.raises(QueryError):
            select_num_clusters(blobs(2), method="aic")

    def test_candidates_below_two(self):
        with pytest.raises(QueryError):
            select_num_clusters(blobs(2), candidates=(1,))

    def test_bad_shape(self):
        with pytest.raises(QueryError):
            select_num_clusters(np.zeros(5))

    def test_sampling_caps_rows(self):
        X = blobs(3, n=2000, seed=6)
        choice = select_num_clusters(
            X, candidates=(2, 3, 4), sample=300, seed=6
        )
        assert choice.best_k == 3

    def test_candidates_beyond_rows_skipped(self):
        X = blobs(2, n=3, seed=7)  # 6 rows total
        choice = select_num_clusters(X, candidates=(2, 50), sample=None)
        assert choice.best_k == 2
