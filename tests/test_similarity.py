"""Unit tests for Algorithms 1 and 2 (IUnit & ranked-list similarity)."""

import numpy as np
import pytest

from repro.errors import CADViewError
from repro.iunits import (
    IUnit,
    cosine_similarity,
    default_tau,
    iunit_similarity,
    ranked_list_distance,
)


def unit(dists, value="v", uid=None):
    attrs = tuple(dists)
    return IUnit("p", value, 10, attrs,
                 {k: np.asarray(v, float) for k, v in dists.items()},
                 {k: () for k in dists}, uid)


class TestCosine:
    def test_identical(self):
        assert cosine_similarity(np.array([1.0, 2.0]), np.array([2.0, 4.0])) == pytest.approx(1.0)

    def test_orthogonal(self):
        assert cosine_similarity(np.array([1.0, 0.0]), np.array([0.0, 1.0])) == 0.0

    def test_zero_vector(self):
        assert cosine_similarity(np.zeros(2), np.array([1.0, 1.0])) == 0.0

    def test_shape_mismatch(self):
        with pytest.raises(CADViewError):
            cosine_similarity(np.zeros(2), np.zeros(3))


class TestAlgorithm1:
    def test_identical_units_max_score(self):
        a = unit({"x": [3, 1], "y": [0, 5]})
        b = unit({"x": [3, 1], "y": [0, 5]})
        assert iunit_similarity(a, b) == pytest.approx(2.0)

    def test_disjoint_units_zero(self):
        a = unit({"x": [1, 0], "y": [1, 0]})
        b = unit({"x": [0, 1], "y": [0, 1]})
        assert iunit_similarity(a, b) == 0.0

    def test_range_is_number_of_attrs(self):
        """Paper: 'for five Compare Attributes the max similarity score
        can be 5.0'."""
        dists = {f"a{i}": [1.0, 2.0] for i in range(5)}
        assert iunit_similarity(unit(dists), unit(dists)) == pytest.approx(5.0)

    def test_symmetry(self):
        a = unit({"x": [3, 1], "y": [2, 5]})
        b = unit({"x": [1, 2], "y": [4, 1]})
        assert iunit_similarity(a, b) == pytest.approx(iunit_similarity(b, a))

    def test_different_attr_sets_raise(self):
        a = unit({"x": [1]})
        b = unit({"y": [1]})
        with pytest.raises(CADViewError):
            iunit_similarity(a, b)


class TestDefaultTau:
    def test_scales_with_attrs(self):
        assert default_tau(5, 0.7) == pytest.approx(3.5)

    def test_alpha_bounds(self):
        with pytest.raises(CADViewError):
            default_tau(5, 0.0)
        with pytest.raises(CADViewError):
            default_tau(5, 1.0)


class TestAlgorithm2:
    def u(self, vec):
        return unit({"x": vec})

    def test_identical_lists_distance_zero(self):
        tx = [self.u([1, 0]), self.u([0, 1])]
        ty = [self.u([1, 0]), self.u([0, 1])]
        assert ranked_list_distance(tx, ty, tau=0.9) == 0.0

    def test_swapped_ranks_cost(self):
        a, b = [1, 0, 0], [0, 1, 0]
        tx = [self.u(a), self.u(b)]
        ty = [self.u(b), self.u(a)]
        # each IUnit finds its match one rank away, four sides: 1+1+1+1
        assert ranked_list_distance(tx, ty, tau=0.9) == 4.0

    def test_no_match_charges_k_plus_one(self):
        tx = [self.u([1, 0, 0])]
        ty = [self.u([0, 1, 0])]
        # tx[1] has no match: |1 - 2| = 1; ty[1] likewise: total 2
        assert ranked_list_distance(tx, ty, tau=0.9) == 2.0

    def test_empty_lists(self):
        assert ranked_list_distance([], [], tau=0.5) == 0.0

    def test_one_empty_list(self):
        # per the paper's Algorithm 2, an unmatched IUnit is charged rank
        # |T^y| + 1; against an empty list that is rank 1, so the rank-1
        # IUnit costs 0 and the rank-2 IUnit costs 1
        tx = [self.u([1, 0]), self.u([0, 1])]
        assert ranked_list_distance(tx, [], tau=0.5) == 1.0

    def test_symmetry(self):
        rng = np.random.default_rng(0)
        tx = [self.u(rng.random(4)) for _ in range(3)]
        ty = [self.u(rng.random(4)) for _ in range(3)]
        assert ranked_list_distance(tx, ty, 0.8) == pytest.approx(
            ranked_list_distance(ty, tx, 0.8)
        )

    def test_closest_rank_match_preferred(self):
        a = [1.0, 0.0]
        # ty has two IUnits similar to tx[0]; rank-1 is closer to rank 1
        tx = [self.u(a)]
        ty = [self.u(a), self.u(a)]
        # tx[0] matches ty rank 1 (cost 0); ty[0] matches 0, ty[1] cost 1
        assert ranked_list_distance(tx, ty, tau=0.9) == 1.0

    def test_lower_tau_finds_more_matches(self):
        tx = [self.u([3, 1])]
        ty = [self.u([1, 3])]
        strict = ranked_list_distance(tx, ty, tau=0.99)
        loose = ranked_list_distance(tx, ty, tau=0.5)
        assert loose <= strict
