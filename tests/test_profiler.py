"""Sampling profiler: span attribution, flamegraphs, self time.

Sampling is inherently timing-dependent, so these tests use a busy
loop long enough (and a rate high enough) that zero samples would
mean the profiler is broken, not unlucky — and they assert structure
(which frames, which spans) rather than exact counts.
"""

from __future__ import annotations

import time

import pytest

from repro.obs.profiler import SamplingProfiler
from repro.obs.tracer import Span, Tracer, set_span_listener


def _busy(seconds: float) -> None:
    deadline = time.perf_counter() + seconds
    while time.perf_counter() < deadline:
        sum(range(100))


class TestLifecycle:
    def test_double_start_rejected(self):
        prof = SamplingProfiler(hz=500)
        prof.start()
        try:
            with pytest.raises(RuntimeError, match="already started"):
                prof.start()
        finally:
            prof.stop()

    def test_stop_is_idempotent(self):
        prof = SamplingProfiler(hz=500)
        prof.start()
        prof.stop()
        prof.stop()  # second stop: no-op, no error

    def test_listener_restored_after_stop(self):
        sentinel = object()
        prev = set_span_listener(sentinel)
        try:
            with SamplingProfiler(hz=500):
                pass
            assert set_span_listener(None) is sentinel
        finally:
            set_span_listener(prev)

    def test_nonpositive_rate_rejected(self):
        with pytest.raises(ValueError, match="must be positive"):
            SamplingProfiler(hz=0)

    def test_zero_overhead_when_off(self):
        # the off switch: no profiler running -> no listener installed
        assert set_span_listener(None) is None


class TestSampling:
    def test_busy_span_is_sampled_and_attributed(self):
        tracer = Tracer("t")
        with SamplingProfiler(hz=500) as prof:
            with tracer.span("busy"):
                _busy(0.4)
        assert prof.sample_count > 0
        assert prof.span_self_samples().get("busy", 0) > 0
        assert any(
            "span:busy" in stack for stack in prof.collapsed()
        )

    def test_innermost_span_gets_the_self_time(self):
        tracer = Tracer("t")
        with SamplingProfiler(hz=500) as prof:
            with tracer.span("outer"):
                with tracer.span("inner"):
                    _busy(0.4)
        spans = prof.span_self_samples()
        assert spans.get("inner", 0) > 0
        # samples inside "inner" must not also count as "outer" self time
        assert spans.get("outer", 0) < spans["inner"]
        nested = [
            s for s in prof.collapsed() if "span:outer;span:inner" in s
        ]
        assert nested, "span chain should prefix the sampled stacks"

    def test_self_time_report_names_busy_span(self):
        tracer = Tracer("t")
        with SamplingProfiler(hz=500) as prof:
            with tracer.span("hotloop"):
                _busy(0.4)
        report = prof.self_time_report(top=5)
        assert "hotloop" in report
        assert "samples" in report


class TestCollapsedFormat:
    def test_write_collapsed_round_trips(self, tmp_path):
        tracer = Tracer("t")
        with SamplingProfiler(hz=500) as prof:
            with tracer.span("fmt"):
                _busy(0.4)
        out = tmp_path / "profile.collapsed"
        n = prof.write_collapsed(str(out))
        lines = out.read_text().splitlines()
        assert n == len(lines) > 0
        assert lines == sorted(lines)  # stable output order
        for line in lines:
            stack, sep, count = line.rpartition(" ")
            assert sep == " "
            assert count.isdigit() and int(count) > 0
            frames = stack.split(";")
            assert all(f and " " not in f for f in frames)

    def test_empty_profile_writes_empty_file(self, tmp_path):
        prof = SamplingProfiler(hz=500)
        out = tmp_path / "empty.collapsed"
        assert prof.write_collapsed(str(out)) == 0
        assert out.read_text() == ""


class TestMemoryPhases:
    def test_bucket_span_records_phase_peak(self):
        tracer = Tracer("t")
        with SamplingProfiler(hz=500, memory=True) as prof:
            with tracer.span("alloc", bucket="iunits"):
                blob = [bytearray(1 << 16) for _ in range(64)]
                del blob
        peaks = prof.phase_peak_bytes()
        assert peaks.get("iunits", 0) >= 64 * (1 << 16)
        assert "iunits" in prof.memory_report()

    def test_memory_off_reports_nothing(self):
        prof = SamplingProfiler(hz=500)
        assert prof.phase_peak_bytes() == {}
        assert "no bucket spans" in prof.memory_report()


class TestSpanSelfTime:
    """Span.self_time_s subtracts the *union* of child intervals."""

    def _span(self, name, start, end):
        span = Span(name)
        span.start_s = start
        span.end_s = end
        return span

    def test_leaf_self_time_is_duration(self):
        assert self._span("leaf", 0.0, 10.0).self_time_s == 10.0

    def test_disjoint_children_subtract_their_sum(self):
        parent = self._span("p", 0.0, 10.0)
        parent.children.append(self._span("a", 1.0, 3.0))
        parent.children.append(self._span("b", 5.0, 6.0))
        assert parent.self_time_s == pytest.approx(7.0)

    def test_overlapping_children_subtract_their_union(self):
        # children from concurrent executor threads overlap in wall
        # time; covered = union([2,8], [4,9]) = [2,9] -> 7, self = 3
        parent = self._span("p", 0.0, 10.0)
        parent.children.append(self._span("a", 2.0, 8.0))
        parent.children.append(self._span("b", 4.0, 9.0))
        assert parent.self_time_s == pytest.approx(3.0)

    def test_contained_child_counted_once(self):
        parent = self._span("p", 0.0, 10.0)
        parent.children.append(self._span("a", 2.0, 8.0))
        parent.children.append(self._span("b", 3.0, 4.0))
        assert parent.self_time_s == pytest.approx(4.0)

    def test_children_covering_everything_clamp_at_zero(self):
        parent = self._span("p", 0.0, 5.0)
        parent.children.append(self._span("a", 0.0, 5.0))
        assert parent.self_time_s == 0.0
