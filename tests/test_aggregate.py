"""Unit tests for group-by aggregation and the CUBE operator."""

import math

import pytest

from repro.errors import QueryError
from repro.query import AggregateSpec, cube, group_by


class TestAggregateSpec:
    def test_unknown_func(self):
        with pytest.raises(QueryError):
            AggregateSpec("variance", "x")

    def test_label(self):
        assert AggregateSpec("mean", "price").label == "mean(price)"
        assert AggregateSpec("count").label == "count(*)"


class TestGroupBy:
    def test_counts(self, toy_table):
        g = group_by(toy_table, ["city"])
        assert g.value(("Paris",), "count(*)") == 3.0
        assert g.value(("Lyon",), "count(*)") == 2.0

    def test_missing_key_groups_under_none(self, toy_table):
        g = group_by(toy_table, ["city"])
        assert g.value((None,), "count(*)") == 1.0

    def test_mean_min_max(self, toy_table):
        g = group_by(
            toy_table, ["city"],
            [AggregateSpec("mean", "price"), AggregateSpec("min", "price"),
             AggregateSpec("max", "price")],
        )
        paris = g.rows[("Paris",)]
        assert paris["mean(price)"] == pytest.approx((400 + 250 + 120) / 3)
        assert paris["min(price)"] == 120.0
        assert paris["max(price)"] == 400.0

    def test_nan_ignored_in_aggregates(self, toy_table):
        g = group_by(toy_table, ["city"], [AggregateSpec("mean", "price")])
        # Nice has one missing price; mean over the present one
        assert g.rows[("Nice",)]["mean(price)"] == pytest.approx(350.0)

    def test_sum_std_median(self, toy_table):
        g = group_by(
            toy_table, ["city"],
            [AggregateSpec("sum", "stars"), AggregateSpec("std", "stars"),
             AggregateSpec("median", "stars")],
        )
        assert g.rows[("Paris",)]["sum(stars)"] == 12.0
        assert g.rows[("Paris",)]["median(stars)"] == 4.0
        assert g.rows[("Lyon",)]["std(stars)"] == pytest.approx(1.0)

    def test_multi_key(self, toy_table):
        g = group_by(toy_table, ["city", "stars"])
        assert g.value(("Paris", 5.0), "count(*)") == 1.0
        assert len(g) >= 7

    def test_total_count_preserved(self, toy_table):
        g = group_by(toy_table, ["city"])
        assert sum(r["count(*)"] for r in g.rows.values()) == len(toy_table)

    def test_numeric_agg_on_categorical_raises(self, toy_table):
        with pytest.raises(QueryError):
            group_by(toy_table, ["city"], [AggregateSpec("mean", "amenity")])

    def test_empty_keys_raise(self, toy_table):
        with pytest.raises(QueryError):
            group_by(toy_table, [])

    def test_unknown_key_raises(self, toy_table):
        with pytest.raises(KeyError):
            group_by(toy_table, ["bogus"])

    def test_value_unknown_group(self, toy_table):
        g = group_by(toy_table, ["city"])
        with pytest.raises(QueryError):
            g.value(("Atlantis",), "count(*)")

    def test_sorted_keys(self, toy_table):
        g = group_by(toy_table, ["city"])
        keys = g.sorted_keys()
        assert keys == sorted(keys, key=lambda k: tuple(map(str, k)))


class TestCube:
    def test_grouping_sets(self, toy_table):
        c = cube(toy_table, ["city", "stars"])
        assert set(c) == {(), ("city",), ("stars",), ("city", "stars")}

    def test_grand_total(self, toy_table):
        c = cube(toy_table, ["city"])
        assert c[()].value((), "count(*)") == len(toy_table)

    def test_rollup_consistency(self, toy_table):
        """Every grouping set must account for all tuples."""
        c = cube(toy_table, ["city", "stars"])
        for gset, result in c.items():
            total = sum(r["count(*)"] for r in result.rows.values())
            assert total == len(toy_table), gset

    def test_max_dims(self, toy_table):
        c = cube(toy_table, ["city", "stars"], max_dims=1)
        assert ("city", "stars") not in c
        assert ("city",) in c

    def test_numeric_aggregate_in_cube(self, toy_table):
        c = cube(toy_table, ["city"], [AggregateSpec("mean", "price")])
        grand = c[()].value((), "mean(price)")
        assert not math.isnan(grand)
