"""Unit tests for CAD View JSON serialization."""

import json

import pytest

from repro import CADViewBuilder, CADViewConfig
from repro.core import serialize
from repro.errors import CADViewError
from repro.query import QueryEngine, parse_predicate


@pytest.fixture(scope="module")
def cad(cars):
    result = QueryEngine.select(
        cars,
        parse_predicate("BodyType = SUV AND Make IN (Jeep, Ford, Honda)"),
    )
    return CADViewBuilder(CADViewConfig(seed=3)).build(
        result, pivot="Make", name="v", exclude=("BodyType",)
    )


class TestDump:
    def test_document_shape(self, cad):
        doc = serialize.to_dict(cad)
        assert doc["format"] == serialize.FORMAT_VERSION
        assert doc["pivot_attribute"] == "Make"
        assert set(doc["rows"]) == set(cad.pivot_values)
        for units in doc["rows"].values():
            for u in units:
                assert set(u) == {"uid", "size", "display", "distributions"}

    def test_json_round_trippable_text(self, cad):
        text = serialize.dumps(cad)
        assert json.loads(text)["name"] == "v"

    def test_label_selectors_are_sql(self, cad):
        doc = serialize.to_dict(cad)
        for attr, selectors in doc["label_selectors"].items():
            for label, sql in selectors.items():
                assert "=" in sql or "BETWEEN" in sql


class TestLoad:
    def test_roundtrip_preserves_structure(self, cad):
        back = serialize.loads(serialize.dumps(cad))
        assert back.pivot_values == cad.pivot_values
        assert back.compare_attributes == cad.compare_attributes
        for value in cad.pivot_values:
            orig = cad.rows[value]
            got = back.rows[value]
            assert [u.size for u in got] == [u.size for u in orig]
            assert [u.uid for u in got] == [u.uid for u in orig]
            for a, b in zip(orig, got):
                assert a.display == {
                    k: tuple(v) for k, v in b.display.items()
                }

    def test_similarity_operations_survive(self, cad):
        back = serialize.loads(serialize.dumps(cad))
        value = cad.pivot_values[0]
        orig_hits = cad.similar_iunits(value, 1, threshold=0.0)
        back_hits = back.similar_iunits(value, 1, threshold=0.0)
        assert len(orig_hits) == len(back_hits)
        for (ref, s1), ((v, uid), s2) in zip(orig_hits, back_hits):
            assert (ref.pivot_value, ref.iunit_id) == (v, uid)
            assert s1 == pytest.approx(s2)

    def test_value_distance_survives(self, cad):
        back = serialize.loads(serialize.dumps(cad))
        a, b = cad.pivot_values[:2]
        assert back.value_distance(a, b) == pytest.approx(
            cad.value_distance(a, b)
        )

    def test_selector_for(self, cad):
        back = serialize.loads(serialize.dumps(cad))
        attr = cad.compare_attributes[0]
        label = back.labels[attr][0]
        assert attr in back.selector_for(attr, label)
        with pytest.raises(CADViewError):
            back.selector_for(attr, "no-such-label")

    def test_bad_format_rejected(self, cad):
        doc = serialize.to_dict(cad)
        doc["format"] = 99
        with pytest.raises(CADViewError):
            serialize.from_dict(doc)

    def test_lookup_validation(self, cad):
        back = serialize.loads(serialize.dumps(cad))
        with pytest.raises(CADViewError):
            back.row("Lada")
        with pytest.raises(CADViewError):
            back.iunit(cad.pivot_values[0], 99)
