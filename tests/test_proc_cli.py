"""CLI surface of multi-process serving and tolerant worklog reads.

The in-process tests drive ``main()`` directly; the SIGTERM test has
to launch ``python -m repro`` as a real subprocess, because graceful
drain on SIGTERM is a whole-process contract (signal handler, drain,
artifact flush, exit 0) that cannot be observed from inside pytest.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.cli import EXIT_BUILD_FAILED, EXIT_OK, EXIT_USAGE, main

REPO = Path(__file__).parent.parent

SQLS = [
    "SELECT Make FROM data",
    "CREATE CADVIEW v AS SET pivot = Make SELECT Price FROM data "
    "LIMIT COLUMNS 3 IUNITS 2",
    "SHOW CADVIEWS",
    "SELECT Price FROM data",
]


def _workload(tmp_path, sqls=SQLS, rows=400):
    path = tmp_path / "wl.jsonl"
    lines = [json.dumps(
        {"kind": "session", "dataset": "usedcars",
         "rows": rows, "seed": 7}
    )]
    for sql in sqls:
        lines.append(json.dumps(
            {"kind": "statement", "statement": sql,
             "statement_kind": "select"}
        ))
    path.write_text("\n".join(lines) + "\n")
    return str(path)


class TestTolerantWorklogReads:
    def _torn(self, tmp_path):
        path = _workload(tmp_path, sqls=SQLS[:2])
        # a writer killed mid-record leaves a truncated trailing line
        with open(path, "a") as fh:
            fh.write('{"kind": "statement", "statement": "SELE')
        return path

    def test_replay_skips_torn_line_with_warning(self, tmp_path, capsys):
        path = self._torn(tmp_path)
        rc = main(["replay", path, "--rows", "300", "--json"])
        assert rc == EXIT_OK
        captured = capsys.readouterr()
        assert "corrupt worklog line skipped" in captured.err
        report = json.loads(captured.out)
        assert report["corrupt_lines"] == 1
        assert report["statements"] == 2  # the torn record is not run

    def test_strict_replay_fails_on_the_same_file(self, tmp_path, capsys):
        path = self._torn(tmp_path)
        rc = main(["replay", path, "--rows", "300", "--strict"])
        assert rc == EXIT_USAGE
        err = capsys.readouterr().err
        assert "not valid JSON" in err and ":4" in err

    def test_concurrent_replay_reports_corrupt_count(
        self, tmp_path, capsys
    ):
        path = self._torn(tmp_path)
        rc = main([
            "replay", path, "--rows", "300", "--concurrency", "2",
            "--json",
        ])
        assert rc == EXIT_OK
        report = json.loads(capsys.readouterr().out)
        assert report["corrupt_lines"] == 1

    def test_clean_log_prints_no_warning(self, tmp_path, capsys):
        rc = main([
            "replay", _workload(tmp_path, sqls=SQLS[:2]),
            "--rows", "300",
        ])
        assert rc == EXIT_OK
        captured = capsys.readouterr()
        assert "corrupt" not in captured.err
        assert "corrupt" not in captured.out


class TestServeFlagValidation:
    def test_chaos_requires_procs(self, tmp_path, capsys):
        rc = main([
            "serve", _workload(tmp_path), "--stress", "--chaos",
        ])
        assert rc == EXIT_USAGE
        assert "--chaos requires --procs" in capsys.readouterr().err

    def test_verify_sequential_requires_procs(self, tmp_path, capsys):
        rc = main([
            "serve", _workload(tmp_path), "--stress",
            "--verify-sequential",
        ])
        assert rc == EXIT_USAGE
        assert "requires --procs" in capsys.readouterr().err

    def test_procs_must_be_positive(self, tmp_path, capsys):
        rc = main([
            "serve", _workload(tmp_path), "--stress", "--procs", "0",
        ])
        assert rc == EXIT_USAGE
        assert "--procs must be >= 1" in capsys.readouterr().err


class TestServeProcs:
    def test_calm_proc_run_drains_clean(self, tmp_path, capsys):
        rc = main([
            "serve", _workload(tmp_path), "--stress",
            "--procs", "1", "--json",
        ])
        assert rc == EXIT_OK
        report = json.loads(capsys.readouterr().out)
        assert report["statements"] == len(SQLS)
        assert set(report["outcomes"]) <= {"ok", "degraded"}
        assert report["drain"]["clean"]
        assert all(
            code == 0 for code in report["drain"]["exitcodes"].values()
        )
        assert report["chaos"]["wedged"] == 0
        assert report["chaos"]["total_deaths"] == 0

    def test_chaos_run_recovers_and_verifies(self, tmp_path, capsys):
        """The headline acceptance gate, end to end: injected crash,
        hang and pipe-drop, every statement terminal, restarts within
        the backoff cap, digests byte-identical to a sequential run."""
        rc = main([
            "serve", _workload(tmp_path), "--stress",
            "--procs", "2", "--chaos", "--verify-sequential", "--json",
        ])
        captured = capsys.readouterr()
        assert rc == EXIT_OK, captured.err
        assert "chaos plan:" in captured.err
        report = json.loads(captured.out)
        assert report["chaos"]["total_deaths"] >= 1
        assert report["chaos"]["wedged"] == 0
        assert (
            report["chaos"]["max_restart_delay_s"]
            <= report["chaos"]["backoff_cap_s"] + 1e-9
        )
        assert set(report["outcomes"]) <= {"ok", "degraded"}

    def test_proc_run_stamps_proc_envelope_into_worklog(
        self, tmp_path, capsys
    ):
        out = tmp_path / "out.worklog.jsonl"
        rc = main([
            "serve", _workload(tmp_path), "--stress",
            "--procs", "1", "--worklog", str(out),
        ])
        assert rc == EXIT_OK
        records = [
            json.loads(line) for line in out.read_text().splitlines()
        ]
        statements = [r for r in records if r["kind"] == "statement"]
        assert len(statements) == len(SQLS)
        assert all(r["proc"]["shard"] == 0 for r in statements)


class TestSigtermGracefulDrain:
    def test_sigterm_mid_run_exits_zero_and_flushes(self, tmp_path):
        """SIGTERM during a proc-mode stress run: admission stops,
        in-flight statements resolve, workers are reaped, the worklog
        and metrics snapshot land on disk, and the exit code is 0.

        Timing-robust by construction: a SIGTERM that arrives before
        the replay starts just rejects every statement (still terminal,
        still exit 0); one that arrives after the run completed is
        ignored.  Either way the drain contract holds.
        """
        workload = _workload(tmp_path, sqls=SQLS * 3, rows=4_000)
        out_worklog = tmp_path / "out.worklog.jsonl"
        metrics = tmp_path / "metrics.json"
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO / "src")
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve", workload,
                "--stress", "--procs", "1",
                "--worklog", str(out_worklog),
                "--metrics", str(metrics),
            ],
            cwd=str(REPO), env=env,
            stdout=subprocess.PIPE, stderr=subprocess.PIPE,
        )
        # sync on evidence, not a fixed sleep: the session header lands
        # in the output worklog just before the CLI installs its
        # SIGTERM handler, so once the file exists the drain path is
        # armed — no matter how slowly imports or worker boot go
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            if out_worklog.exists() or proc.poll() is not None:
                break
            time.sleep(0.05)
        time.sleep(1.0)  # let the workers boot / the replay begin
        if proc.poll() is None:
            proc.send_signal(signal.SIGTERM)
        stdout, stderr = proc.communicate(timeout=120)
        assert proc.returncode == 0, (stdout, stderr)
        # artifacts flushed despite the interruption
        snap = json.loads(metrics.read_text())
        assert "counters" in snap
        records = [
            json.loads(line)
            for line in out_worklog.read_text().splitlines()
        ]
        assert records[0]["kind"] == "session"
        # every statement a worker actually served carries provenance;
        # ones rejected at admission (drain already begun, queue full)
        # never reached a shard and legitimately have none
        for record in records[1:]:
            if record["kind"] == "statement" and \
                    record["status"] in ("ok", "degraded"):
                assert "proc" in record


class TestTelemetryCLI:
    @pytest.fixture(autouse=True)
    def _fresh_registry(self):
        """In-process main() calls share the global registry; the
        conservation assertions need a clean slate per test."""
        from repro.obs import MetricsRegistry, registry, set_registry

        old = registry()
        set_registry(MetricsRegistry())
        yield
        set_registry(old)

    def test_proc_run_emits_stitched_obs_artifacts(self, tmp_path, capsys):
        """One --procs run exercises the whole telemetry surface:
        stitched trace, merged cluster metrics, stats snapshot, SLO
        gate, and the `repro stats` offline renderer."""
        trace = tmp_path / "stitched.json"
        metrics = tmp_path / "cluster.json"
        stats = tmp_path / "stats.json"
        rc = main([
            "serve", _workload(tmp_path), "--stress", "--procs", "2",
            "--trace", str(trace), "--metrics", str(metrics),
            "--stats-file", str(stats),
            "--slo", "*:error_rate<=1.0", "--json",
        ])
        captured = capsys.readouterr()
        assert rc == EXIT_OK, captured.err
        assert "SLO check: PASS" in captured.err
        report = json.loads(captured.out)
        assert report["telemetry"]["workers_seen"] == 2

        # the stitched trace passes the CI validator's stitched mode
        import importlib.util

        spec = importlib.util.spec_from_file_location(
            "check_trace", REPO / "benchmarks" / "check_trace.py"
        )
        checker = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(checker)
        assert checker.validate_trace(str(trace), stitched=True) == []
        assert checker.validate_metrics(
            str(metrics),
            require_counters=["proc.telemetry.dropped"],
        ) == []

        # cluster metrics conserve the statement count
        counters = json.loads(metrics.read_text())["counters"]
        completed = sum(
            v for k, v in counters.items()
            if k.startswith("proc.s") and k.endswith(".completed")
            and ".g" not in k
        ) + counters.get("proc.unrouted.completed", 0)
        assert completed == len(SQLS)

        # the stats snapshot renders offline, with the SLO gate attached
        rc = main(["stats", str(stats), "--slo", "*:error_rate<=1.0"])
        captured = capsys.readouterr()
        assert rc == EXIT_OK, captured.err
        assert "serve stats" in captured.out
        rc = main(["stats", str(stats), "--slo", "*:p99_ms<=0.0001"])
        assert rc == EXIT_BUILD_FAILED
        capsys.readouterr()

    def test_replay_reports_captured_per_shard_breakdown(
        self, tmp_path, capsys
    ):
        out = tmp_path / "out.worklog.jsonl"
        rc = main([
            "serve", _workload(tmp_path), "--stress", "--procs", "2",
            "--worklog", str(out),
        ])
        assert rc == EXIT_OK
        capsys.readouterr()
        rc = main(["replay", str(out), "--rows", "300", "--json"])
        assert rc == EXIT_OK
        report = json.loads(capsys.readouterr().out)
        shards = report["captured_by_shard"]
        assert shards  # records were stamped, so the breakdown exists
        assert all(k.startswith("s") for k in shards)
        assert sum(int(s["count"]) for s in shards.values()) == len(SQLS)

    def test_serve_slo_failure_exits_nonzero(self, tmp_path, capsys):
        rc = main([
            "serve", _workload(tmp_path), "--stress", "--procs", "1",
            "--slo", "*:mean_ms<=0.000001",
        ])
        captured = capsys.readouterr()
        assert rc == EXIT_BUILD_FAILED
        assert "SLO check: FAIL" in captured.err

    def test_slo_warn_downgrades_to_warning(self, tmp_path, capsys):
        rc = main([
            "replay", _workload(tmp_path), "--rows", "300",
            "--slo", "*:mean_ms<=0.000001", "--slo-warn",
        ])
        captured = capsys.readouterr()
        assert rc == EXIT_OK
        assert "SLO check: FAIL" in captured.err
        assert "not fatal" in captured.err

    def test_stats_cmd_reports_corrupt_snapshot(self, tmp_path, capsys):
        # a torn/garbage snapshot (SIGUSR1 dump racing a reader) is an
        # operational failure (exit 2), not an operator mistake
        bogus = tmp_path / "nope.json"
        bogus.write_text("not json")
        rc = main(["stats", str(bogus)])
        assert rc == EXIT_BUILD_FAILED
        assert "corrupt snapshot" in capsys.readouterr().err

    def test_stats_cmd_reports_truncated_snapshot(self, tmp_path, capsys):
        torn = tmp_path / "torn.json"
        torn.write_text('{"uptime_s": 1.5, "sessions": {"coun')
        rc = main(["stats", str(torn)])
        assert rc == EXIT_BUILD_FAILED
        assert "corrupt snapshot" in capsys.readouterr().err

    def test_stats_cmd_missing_file_is_usage_error(self, tmp_path, capsys):
        rc = main(["stats", str(tmp_path / "absent.json")])
        assert rc == EXIT_USAGE
        assert "cannot read" in capsys.readouterr().err
