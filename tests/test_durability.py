"""Unit tests for the durable catalog WAL (:mod:`repro.serve.durability`).

Everything here runs in-process — the record codec, torn-tail
handling, snapshot selection and fallback, journal compaction, group
commit, and the writer/recovery round trip.  The whole-process kill -9
proof lives in ``tests/test_torture.py``.
"""

import io
import json
import os
import threading

import pytest

from repro.errors import DurabilityError, RecoveryError
from repro.serve.durability import (
    HEADER,
    WalWriter,
    compact_journal,
    encode_record,
    recover_state,
    scan_segment,
    segment_path,
    snapshot_path,
)

CREATE_A = (
    "CREATE CADVIEW a AS SET pivot = Make "
    "SELECT Price FROM data LIMIT COLUMNS 3 IUNITS 2"
)
CREATE_A2 = (
    "CREATE CADVIEW a AS SET pivot = BodyType "
    "SELECT Price FROM data LIMIT COLUMNS 3 IUNITS 2"
)
CREATE_B = (
    "CREATE CADVIEW b AS SET pivot = Make "
    "SELECT Mileage FROM data LIMIT COLUMNS 3 IUNITS 2"
)
REORDER_A = "REORDER ROWS IN a ORDER BY SIMILARITY(Ford) DESC"
DROP_A = "DROP CADVIEW a"


class TestRecordCodec:
    def test_roundtrip(self):
        data = encode_record(7, 3, CREATE_A, "s1")
        records, bad, reason = scan_segment(io.BytesIO(data))
        assert bad is None and reason is None
        (rec,) = records
        assert rec.seq == 7
        assert rec.shard == 3
        assert rec.sql == CREATE_A
        assert rec.session == "s1"
        assert rec.offset == 0
        assert rec.length == len(data)

    def test_multiple_records_offsets(self):
        blob = b"".join(
            encode_record(i + 1, 0, DROP_A, "s") for i in range(3)
        )
        records, bad, _ = scan_segment(io.BytesIO(blob))
        assert bad is None
        assert [r.seq for r in records] == [1, 2, 3]
        assert records[1].offset == records[0].length
        assert records[2].offset == records[0].length + records[1].length

    def test_shard_out_of_range_refused(self):
        with pytest.raises(DurabilityError):
            encode_record(1, 256, DROP_A, "s")
        with pytest.raises(DurabilityError):
            encode_record(-1, 0, DROP_A, "s")

    def test_crc_flip_detected_anywhere(self):
        data = bytearray(encode_record(1, 0, CREATE_A, "s1"))
        for pos in (3, HEADER.size + 4):  # header byte, payload byte
            flipped = bytearray(data)
            flipped[pos] ^= 0x40
            records, bad, reason = scan_segment(io.BytesIO(bytes(flipped)))
            assert records == []
            assert bad == 0
            assert reason is not None

    def test_truncated_header_and_payload(self):
        data = encode_record(1, 0, CREATE_A, "s1")
        for cut in (HEADER.size - 3, len(data) - 5):
            records, bad, reason = scan_segment(io.BytesIO(data[:cut]))
            assert records == []
            assert bad == 0
            assert "short" in reason

    def test_torn_tail_after_intact_records(self):
        good = encode_record(1, 0, DROP_A, "s")
        torn = encode_record(2, 0, DROP_A, "s")[:10]
        records, bad, _ = scan_segment(io.BytesIO(good + torn))
        assert [r.seq for r in records] == [1]
        assert bad == len(good)


class TestCompactJournal:
    def test_drop_annihilates(self):
        entries = [(CREATE_A, "s"), (REORDER_A, "s"), (DROP_A, "s")]
        assert compact_journal(entries) == []

    def test_recreate_supersedes(self):
        entries = [(CREATE_A, "s"), (REORDER_A, "s"), (CREATE_A2, "s")]
        assert compact_journal(entries) == [(CREATE_A2, "s")]

    def test_other_views_survive(self):
        entries = [(CREATE_A, "s"), (CREATE_B, "s"), (DROP_A, "s")]
        assert compact_journal(entries) == [(CREATE_B, "s")]

    def test_reorder_kept_and_unparsable_kept(self):
        entries = [(CREATE_A, "s"), (REORDER_A, "s"), ("garbage !", "s")]
        assert compact_journal(entries) == entries

    def test_composable(self):
        # compact(compact(a) + b) == compact(a + b): the property that
        # makes comparing compacted acked vs recovered journals sound
        a = [(CREATE_A, "s"), (REORDER_A, "s")]
        b = [(DROP_A, "s"), (CREATE_B, "s")]
        assert compact_journal(compact_journal(a) + b) == \
            compact_journal(a + b)


class TestWalWriter:
    def test_commit_assigns_contiguous_seqs(self, tmp_path):
        w = WalWriter(str(tmp_path))
        seqs = [w.commit(0, DROP_A, "s") for _ in range(5)]
        w.close(final_snapshot=False)
        assert seqs == [1, 2, 3, 4, 5]
        rec = recover_state(str(tmp_path))
        assert rec.last_seq == 5
        assert rec.journals[0] == [(DROP_A, "s")] * 5

    def test_segment_rotation(self, tmp_path):
        w = WalWriter(str(tmp_path), segment_max_bytes=1)
        for _ in range(3):
            w.commit(0, DROP_A, "s")
        w.close(final_snapshot=False)
        segments = sorted(
            n for n in os.listdir(tmp_path) if n.startswith("wal-")
        )
        assert len(segments) == 3  # every second+ record rotates
        rec = recover_state(str(tmp_path))
        assert rec.last_seq == 3

    def test_snapshot_compacts_and_truncates(self, tmp_path):
        journal = []

        def snapshot_cb():
            compacted = compact_journal(journal)
            journal[:] = compacted
            return {
                "shards": 1,
                "view_shard": {"a": 0} if compacted else {},
                "journals": {0: list(compacted)},
            }

        w = WalWriter(
            str(tmp_path), segment_max_bytes=1, snapshot_every=2,
            snapshot_cb=snapshot_cb,
        )
        for sql in (CREATE_A, REORDER_A, DROP_A, CREATE_A2):
            w.commit(0, sql, "s", on_durable=lambda s=sql:
                     journal.append((s, "s")))
        w.close(final_snapshot=False)
        names = sorted(os.listdir(tmp_path))
        snapshots = [n for n in names if n.startswith("snapshot-")]
        assert snapshots == [os.path.basename(
            snapshot_path(str(tmp_path), 4)
        )]
        rec = recover_state(str(tmp_path))
        assert rec.last_seq == 4
        assert rec.snapshot_seq == 4
        assert rec.journals[0] == [(CREATE_A2, "s")]
        assert rec.view_shard == {"a": 0}

    def test_snapshot_images_triggering_record(self, tmp_path):
        # regression: the record whose commit triggers the snapshot
        # must be *in* the snapshot image (its segment is truncated)
        journal = []
        w = WalWriter(
            str(tmp_path), snapshot_every=1,
            snapshot_cb=lambda: {
                "shards": 1, "view_shard": {},
                "journals": {0: list(journal)},
            },
        )
        w.commit(0, CREATE_A, "s",
                 on_durable=lambda: journal.append((CREATE_A, "s")))
        w.close(final_snapshot=False)
        rec = recover_state(str(tmp_path))
        assert rec.snapshot_seq == 1
        assert rec.journals[0] == [(CREATE_A, "s")]

    def test_group_commit_batches_fsyncs(self, tmp_path):
        w = WalWriter(str(tmp_path), fsync_interval_ms=20.0)
        threads = [
            threading.Thread(target=w.commit, args=(0, DROP_A, f"s{i}"))
            for i in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        stats = w.stats()
        w.close(final_snapshot=False)
        assert stats["last_seq"] == 8
        rec = recover_state(str(tmp_path))
        assert rec.last_seq == 8
        assert sorted(s for _, s in rec.journals[0]) == \
            sorted(f"s{i}" for i in range(8))

    def test_commit_after_close_refused(self, tmp_path):
        w = WalWriter(str(tmp_path))
        w.close(final_snapshot=False)
        with pytest.raises(DurabilityError):
            w.commit(0, DROP_A, "s")

    def test_resume_starts_fresh_segment(self, tmp_path):
        w = WalWriter(str(tmp_path))
        w.commit(0, CREATE_A, "s")
        w.close(final_snapshot=False)
        rec = recover_state(str(tmp_path))
        assert rec.next_ordinal == 1
        w2 = WalWriter(
            str(tmp_path), start_seq=rec.last_seq,
            start_ordinal=rec.next_ordinal,
        )
        w2.commit(0, REORDER_A, "s")
        w2.close(final_snapshot=False)
        rec2 = recover_state(str(tmp_path))
        assert rec2.last_seq == 2
        assert rec2.journals[0] == [(CREATE_A, "s"), (REORDER_A, "s")]


class TestRecovery:
    def _write_records(self, tmp_path, seqs, ordinal=0, shard=0):
        path = segment_path(str(tmp_path), ordinal)
        with open(path, "ab") as fh:
            for seq in seqs:
                fh.write(encode_record(seq, shard, DROP_A, "s"))
        return path

    def test_missing_dir_refused(self, tmp_path):
        with pytest.raises(RecoveryError):
            recover_state(str(tmp_path / "nope"))

    def test_empty_dir_recovers_empty(self, tmp_path):
        rec = recover_state(str(tmp_path))
        assert rec.last_seq == 0
        assert rec.journals == {}

    def test_torn_tail_truncated_with_warning(self, tmp_path):
        path = self._write_records(tmp_path, [1, 2])
        with open(path, "ab") as fh:
            fh.write(encode_record(3, 0, DROP_A, "s")[:15])
        rec = recover_state(str(tmp_path), truncate=True)
        assert rec.last_seq == 2
        assert rec.torn_tail is not None
        assert rec.torn_tail["truncated"] is True
        assert rec.warnings
        # the file is physically truncated: a second pass is clean
        rec2 = recover_state(str(tmp_path))
        assert rec2.torn_tail is None
        assert rec2.last_seq == 2

    def test_readonly_pass_leaves_tail(self, tmp_path):
        path = self._write_records(tmp_path, [1])
        with open(path, "ab") as fh:
            fh.write(b"\x00" * 7)
        size = os.path.getsize(path)
        rec = recover_state(str(tmp_path), truncate=False)
        assert rec.torn_tail is not None
        assert rec.torn_tail["truncated"] is False
        assert os.path.getsize(path) == size

    def test_mid_history_damage_refused(self, tmp_path):
        path = self._write_records(tmp_path, [1])
        good = encode_record(2, 0, DROP_A, "s")
        with open(path, "ab") as fh:
            fh.write(good[:10])      # torn record...
            fh.write(good)           # ...with intact bytes after it
        with pytest.raises(RecoveryError, match="mid-history"):
            recover_state(str(tmp_path))

    def test_damage_in_earlier_segment_refused(self, tmp_path):
        path = self._write_records(tmp_path, [1], ordinal=0)
        with open(path, "ab") as fh:
            fh.write(encode_record(2, 0, DROP_A, "s")[:10])
        self._write_records(tmp_path, [2], ordinal=1)
        with pytest.raises(RecoveryError, match="mid-history"):
            recover_state(str(tmp_path))

    def test_seq_gap_refused(self, tmp_path):
        self._write_records(tmp_path, [1, 3])
        with pytest.raises(RecoveryError, match="gap"):
            recover_state(str(tmp_path))

    def test_newest_snapshot_wins(self, tmp_path):
        for seq, views in ((2, {"a": 0}), (5, {"b": 0})):
            with open(snapshot_path(str(tmp_path), seq), "w") as fh:
                json.dump({
                    "kind": "repro-wal-snapshot", "version": 1,
                    "last_seq": seq, "shards": 1,
                    "view_shard": views,
                    "journals": {"0": [[CREATE_A, "s"]]},
                }, fh)
        rec = recover_state(str(tmp_path))
        assert rec.snapshot_seq == 5
        assert rec.view_shard == {"b": 0}

    def test_invalid_newest_snapshot_falls_back(self, tmp_path):
        with open(snapshot_path(str(tmp_path), 2), "w") as fh:
            json.dump({
                "kind": "repro-wal-snapshot", "version": 1,
                "last_seq": 2, "shards": 1, "view_shard": {},
                "journals": {"0": [[CREATE_A, "s"]]},
            }, fh)
        with open(snapshot_path(str(tmp_path), 9), "w") as fh:
            fh.write('{"kind": "repro-wal-snap')  # torn mid-write
        rec = recover_state(str(tmp_path))
        assert rec.snapshot_seq == 2
        assert any("unreadable" in w for w in rec.warnings)

    def test_all_snapshots_invalid_refused(self, tmp_path):
        with open(snapshot_path(str(tmp_path), 3), "w") as fh:
            fh.write("not json")
        with pytest.raises(RecoveryError, match="no readable snapshot"):
            recover_state(str(tmp_path))

    def test_snapshot_shard_mismatch_refused(self, tmp_path):
        with open(snapshot_path(str(tmp_path), 1), "w") as fh:
            json.dump({
                "kind": "repro-wal-snapshot", "version": 1,
                "last_seq": 1, "shards": 2, "view_shard": {},
                "journals": {},
            }, fh)
        with pytest.raises(RecoveryError, match="--procs 2"):
            recover_state(str(tmp_path), shards=3)

    def test_records_covered_by_snapshot_skipped(self, tmp_path):
        with open(snapshot_path(str(tmp_path), 2), "w") as fh:
            json.dump({
                "kind": "repro-wal-snapshot", "version": 1,
                "last_seq": 2, "shards": 1, "view_shard": {},
                "journals": {"0": [[CREATE_A, "s"]]},
            }, fh)
        # a crash between snapshot rename and segment deletion leaves
        # records the snapshot already covers
        self._write_records(tmp_path, [1, 2, 3])
        rec = recover_state(str(tmp_path))
        assert rec.records_skipped == 2
        assert rec.records_replayed == 1
        assert rec.last_seq == 3

    def test_orphan_tmp_files_cleaned(self, tmp_path):
        orphan = tmp_path / ".snapshot-000000000003.json.tmp.12345"
        orphan.write_text("{}")
        rec = recover_state(str(tmp_path), truncate=True)
        assert not orphan.exists()
        assert any("orphaned temp" in w for w in rec.warnings)
