"""The observability layer: spans, metrics, exporters.

Covers the tentpole invariants: span nesting survives exceptions,
bucket-tagged spans feed the legacy profile exactly, the Chrome trace
export is structurally valid, and the metrics registry is thread-safe
with mergeable snapshots.
"""

import json
import threading

import pytest

from repro.core.profile import BuildProfile
from repro.obs import (
    LATENCY_BUCKETS_S,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_TRACER,
    NullTracer,
    Tracer,
    render_trace,
    to_chrome_trace,
    write_chrome_trace,
    write_metrics,
)


# ------------------------------------------------------------------ spans

class TestSpan:
    def test_nesting_builds_a_tree(self):
        tracer = Tracer("root")
        with tracer.span("a"):
            with tracer.span("b"):
                pass
            with tracer.span("c"):
                pass
        root = tracer.finish()
        assert [c.name for c in root.children] == ["a"]
        assert [c.name for c in root.children[0].children] == ["b", "c"]
        assert all(s.closed for s in root.walk())

    def test_nesting_restored_after_exception(self):
        tracer = Tracer("root")
        with pytest.raises(ValueError):
            with tracer.span("outer"):
                with tracer.span("fails"):
                    raise ValueError("boom")
        # the stack unwound: new spans attach to the root again
        with tracer.span("after"):
            pass
        root = tracer.finish()
        assert [c.name for c in root.children] == ["outer", "after"]
        failed = root.find("fails")[0]
        assert failed.status == "error"
        assert "ValueError" in failed.error
        assert failed.closed
        # the outer span is also marked failed (the exception passed it)
        assert root.find("outer")[0].status == "error"
        assert root.find("after")[0].status == "ok"

    def test_counters_and_attrs(self):
        tracer = Tracer("root")
        with tracer.span("work", rows=10) as span:
            tracer.inc("items")
            tracer.inc("items", 2)
            span.set_attr("rows", 11)
        assert span.counters["items"] == 3
        assert span.attrs["rows"] == 11
        assert tracer.root.total_counter("items") == 3

    def test_events_record_annotations(self):
        tracer = Tracer("root")
        with tracer.span("phase"):
            tracer.annotate("degradation", "exact->greedy")
        span = tracer.root.find("phase")[0]
        assert [e.kind for e in span.events] == ["degradation"]
        assert "exact->greedy" in str(span.events[0])

    def test_bucket_total_counts_outermost_tagged_spans(self):
        tracer = Tracer("root")
        with tracer.span("a", bucket="iunits"):
            # nested same-bucket span must NOT double-count
            with tracer.span("inner", bucket="iunits"):
                pass
        with tracer.span("b", bucket="others"):
            pass
        root = tracer.finish()
        a, b = root.children
        assert root.bucket_total("iunits") == pytest.approx(a.duration_s)
        assert root.bucket_total("others") == pytest.approx(b.duration_s)
        assert root.bucket_total("compare_attrs") == 0.0

    def test_profile_fed_on_close_even_under_exception(self):
        tracer = Tracer("root")
        profile = BuildProfile()
        with pytest.raises(RuntimeError):
            with tracer.span("x", bucket="iunits", profile=profile):
                raise RuntimeError("boom")
        assert profile.iunits_s > 0

    def test_as_dict_roundtrips_through_json(self):
        tracer = Tracer("root", pivot="Make")
        with tracer.span("a", bucket="iunits", rows=3):
            tracer.inc("n")
        dump = json.loads(json.dumps(tracer.finish().as_dict()))
        assert dump["name"] == "root"
        assert dump["children"][0]["bucket"] == "iunits"
        assert dump["children"][0]["counters"] == {"n": 1.0}

    def test_null_tracer_records_nothing_but_feeds_profile(self):
        profile = BuildProfile()
        with NULL_TRACER.span("x", bucket="others", profile=profile) as sp:
            sp.inc("n")
            sp.set_attr("a", 1)
        assert profile.others_s > 0
        assert NULL_TRACER.current.counters == {}
        assert NULL_TRACER.current.attrs == {}
        assert NullTracer().root.children == []


# ------------------------------------------------------------------ export

class TestExport:
    def make_trace(self):
        tracer = Tracer("build")
        with tracer.span("phase", bucket="iunits", rows=5):
            tracer.inc("clusters", 2)
            tracer.annotate("retry", "attempt 1 failed")
        return tracer.finish()

    def test_chrome_trace_shape(self):
        doc = to_chrome_trace(self.make_trace())
        events = doc["traceEvents"]
        complete = [e for e in events if e["ph"] == "X"]
        instants = [e for e in events if e["ph"] == "i"]
        assert len(complete) == 2 and len(instants) == 1
        for ev in complete:
            assert ev["ts"] >= 0 and ev["dur"] >= 0
        phase = next(e for e in complete if e["name"] == "phase")
        assert phase["cat"] == "iunits"
        assert phase["args"]["rows"] == 5
        assert phase["args"]["clusters"] == 2

    def test_write_chrome_trace_is_valid_json(self, tmp_path):
        path = tmp_path / "trace.json"
        write_chrome_trace(self.make_trace(), str(path))
        doc = json.loads(path.read_text())
        assert doc["displayTimeUnit"] == "ms"
        assert doc["traceEvents"]

    def test_render_trace_structure(self):
        text = render_trace(self.make_trace())
        assert text.splitlines()[0].startswith("build")
        assert "[iunits]" in text
        assert "! retry: attempt 1 failed" in text

    def test_render_without_times_is_stable(self):
        a = render_trace(self.make_trace(), show_times=False)
        b = render_trace(self.make_trace(), show_times=False)
        assert a == b
        assert "ms" not in a

    def test_render_max_depth_truncates(self):
        tracer = Tracer("r")
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        text = render_trace(tracer.finish(), max_depth=1)
        assert "a" in text and "b" not in text


# ------------------------------------------------------------------ metrics

class TestMetrics:
    def test_counter_monotone(self):
        c = Counter()
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_gauge_moves_both_ways(self):
        g = Gauge()
        g.set(10)
        g.add(-3)
        assert g.value == 7

    def test_histogram_buckets(self):
        h = Histogram(bounds=(1.0, 2.0, 5.0))
        for v in (0.5, 1.5, 1.5, 10.0):
            h.observe(v)
        assert h.counts == [1, 2, 0, 1]  # last is overflow
        assert h.count == 4
        assert h.mean == pytest.approx(13.5 / 4)
        assert h.quantile(0.5) == 2.0
        assert h.quantile(1.0) == float("inf")

    def test_histogram_rejects_bad_bounds(self):
        with pytest.raises(ValueError):
            Histogram(bounds=(1.0, 1.0))
        with pytest.raises(ValueError):
            Histogram(bounds=())

    def test_registry_get_or_create(self):
        reg = MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")
        assert reg.gauge("x") is reg.gauge("x")
        assert reg.histogram("x") is reg.histogram("x")

    def test_snapshot_and_merge(self):
        a = MetricsRegistry()
        a.counter("c").inc(2)
        a.gauge("g").set(1)
        a.histogram("h", (1.0, 2.0)).observe(1.5)
        b = MetricsRegistry()
        b.counter("c").inc(3)
        b.histogram("h", (1.0, 2.0)).observe(0.5)
        b.merge(a.snapshot())
        snap = b.snapshot()
        assert snap["counters"]["c"] == 5
        assert snap["gauges"]["g"] == 1
        assert snap["histograms"]["h"]["counts"] == [1, 1, 0]
        assert snap["histograms"]["h"]["count"] == 2

    def test_merge_rejects_mismatched_bounds(self):
        a = MetricsRegistry()
        a.histogram("h", (1.0, 2.0)).observe(1.0)
        b = MetricsRegistry()
        b.histogram("h", (5.0, 9.0))
        with pytest.raises(ValueError):
            b.merge(a.snapshot())

    def test_thread_safety_under_contention(self):
        reg = MetricsRegistry()
        n_threads, per_thread = 8, 2000

        def work():
            counter = reg.counter("shared")
            hist = reg.histogram("lat", LATENCY_BUCKETS_S)
            for _ in range(per_thread):
                counter.inc()
                hist.observe(0.003)

        threads = [threading.Thread(target=work) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        total = n_threads * per_thread
        assert reg.counter("shared").value == total
        assert reg.histogram("lat").count == total

    def test_snapshot_merge_under_concurrent_writers(self):
        """Merging while writers hammer the source must stay consistent.

        Snapshots taken mid-flight may be stale but never torn: every
        merged histogram must satisfy count == sum(bucket counts), and
        the final merge (after joining) must account for every single
        observation.
        """
        src = MetricsRegistry()
        dst = MetricsRegistry()
        n_threads, per_thread = 4, 1000
        stop = threading.Event()

        def write():
            hist = src.histogram("lat", (0.001, 0.01, 0.1))
            counter = src.counter("ops")
            for i in range(per_thread):
                hist.observe(0.005 if i % 2 else 0.05)
                counter.inc()

        def merge_repeatedly():
            while not stop.is_set():
                probe = MetricsRegistry()
                probe.merge(src.snapshot())
                snap = probe.snapshot()
                for dump in snap["histograms"].values():
                    assert sum(dump["counts"]) == dump["count"]

        writers = [
            threading.Thread(target=write) for _ in range(n_threads)
        ]
        merger = threading.Thread(target=merge_repeatedly)
        merger.start()
        for t in writers:
            t.start()
        for t in writers:
            t.join()
        stop.set()
        merger.join()
        dst.merge(src.snapshot())
        total = n_threads * per_thread
        assert dst.counter("ops").value == total
        assert dst.histogram("lat").count == total
        assert sum(dst.histogram("lat").counts) == total

    def test_percentiles_stable_under_concurrent_writers(self):
        """Quantiles computed after a concurrent load match serial math.

        All observations land in known buckets, so the bucket-bound
        quantile is exactly predictable: 60% of samples at 5ms and 40%
        at 50ms over bounds (1ms, 10ms, 100ms) put p50 at 10ms and p95
        at 100ms regardless of write interleaving.
        """
        reg = MetricsRegistry()
        n_threads, per_thread = 8, 500

        def work(tid):
            hist = reg.histogram("lat", (0.001, 0.01, 0.1))
            for i in range(per_thread):
                hist.observe(0.005 if i % 5 < 3 else 0.05)

        threads = [
            threading.Thread(target=work, args=(t,))
            for t in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        hist = reg.histogram("lat")
        assert hist.count == n_threads * per_thread
        assert hist.quantile(0.5) == 0.01
        assert hist.quantile(0.95) == 0.1
        # the mean is exact: sums are locked, not sampled
        expected_mean = 0.6 * 0.005 + 0.4 * 0.05
        assert hist.mean == pytest.approx(expected_mean)

    def test_quantile_edges_and_merge_equivalence(self):
        """quantile() edge cases + merge == serially observed histogram."""
        empty = Histogram(bounds=(1.0, 2.0))
        assert empty.quantile(0.5) == 0.0
        with pytest.raises(ValueError):
            empty.quantile(1.5)

        a = MetricsRegistry()
        b = MetricsRegistry()
        serial = Histogram(bounds=(1.0, 2.0, 5.0))
        for i, v in enumerate((0.5, 1.5, 3.0, 7.0, 1.2, 4.0)):
            (a if i % 2 else b).histogram(
                "h", (1.0, 2.0, 5.0)
            ).observe(v)
            serial.observe(v)
        merged = MetricsRegistry()
        merged.merge(a.snapshot())
        merged.merge(b.snapshot())
        h = merged.histogram("h")
        assert h.counts == serial.counts
        for q in (0.1, 0.5, 0.9, 1.0):
            assert h.quantile(q) == serial.quantile(q)

    def test_clear_forgets_everything(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.clear()
        assert reg.snapshot()["counters"] == {}

    def test_write_metrics(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("c").inc(4)
        path = tmp_path / "metrics.json"
        write_metrics(reg, str(path))
        assert json.loads(path.read_text())["counters"]["c"] == 4


# ------------------------------------------------------------------ threads

class TestThreadedTracing:
    def test_spans_nest_per_thread(self):
        tracer = Tracer("root")
        errors = []

        def work(i):
            try:
                with tracer.span(f"t{i}"):
                    with tracer.span(f"t{i}.child"):
                        pass
            except Exception as exc:  # pragma: no cover - diagnostic
                errors.append(exc)

        threads = [
            threading.Thread(target=work, args=(i,)) for i in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        root = tracer.finish()
        assert len(root.children) == 4
        for child in root.children:
            # each thread's child span nested under its own top span
            assert len(child.children) == 1
            assert child.children[0].name == f"{child.name}.child"
