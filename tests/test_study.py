"""Tests for study metrics, cost model, tasks, agents, and the runner."""

import numpy as np
import pytest

from repro.core import CADViewConfig
from repro.errors import QueryError
from repro.facets import FacetedEngine
from repro.study import (
    AlternativeTask,
    ClassifierTask,
    CostModel,
    SimilarPairTask,
    SolrAgent,
    TPFacetAgent,
    UserProfile,
    f1_score,
    mushroom_task_suite,
    pair_rank,
    pair_similarity_ranking,
    retrieval_error,
    run_study,
)


@pytest.fixture(scope="module")
def engine(mushroom):
    return FacetedEngine(mushroom)


@pytest.fixture(scope="module")
def suite():
    return mushroom_task_suite()


class TestF1:
    def test_perfect(self):
        m = np.array([True, False, True])
        assert f1_score(m, m) == 1.0

    def test_no_overlap(self):
        assert f1_score(
            np.array([True, False]), np.array([False, True])
        ) == 0.0

    def test_known_value(self):
        pred = np.array([True, True, False, False])
        act = np.array([True, False, True, False])
        # precision 0.5, recall 0.5 -> F1 0.5
        assert f1_score(pred, act) == pytest.approx(0.5)

    def test_shape_mismatch(self):
        with pytest.raises(QueryError):
            f1_score(np.array([True]), np.array([True, False]))


class TestPairMetrics:
    def test_ranking_sorted(self, engine):
        ranking = pair_similarity_ranking(
            engine, "gill-color", ("buff", "white", "brown", "green")
        )
        assert len(ranking) == 6
        sims = [s for _, s in ranking]
        assert sims == sorted(sims, reverse=True)

    def test_brown_white_most_similar(self, engine):
        """The paper's T2a ground truth."""
        ranking = pair_similarity_ranking(
            engine, "gill-color", ("buff", "white", "brown", "green")
        )
        assert frozenset(ranking[0][0]) == frozenset(("white", "brown"))

    def test_pair_rank_order_insensitive(self, engine):
        ranking = pair_similarity_ranking(
            engine, "gill-color", ("buff", "white", "brown")
        )
        pair = ranking[1][0]
        assert pair_rank(ranking, (pair[1], pair[0])) == 2

    def test_pair_rank_missing(self, engine):
        ranking = pair_similarity_ranking(
            engine, "gill-color", ("buff", "white")
        )
        with pytest.raises(QueryError):
            pair_rank(ranking, ("buff", "green"))

    def test_needs_two_values(self, engine):
        with pytest.raises(QueryError):
            pair_similarity_ranking(engine, "gill-color", ("buff",))


class TestRetrievalError:
    def test_identical_zero(self, engine):
        d = engine.digest({"odor": {"foul"}})
        assert retrieval_error(d, d) == pytest.approx(0.0)

    def test_different_positive(self, engine):
        a = engine.digest({"odor": {"foul"}})
        b = engine.digest({"odor": {"almond"}})
        assert retrieval_error(a, b) > 0.05


class TestTasks:
    def test_classifier_score_range(self, engine, suite):
        t = suite.classifier[0]
        s = t.score(engine, {"odor": {"none"}})
        assert 0.0 <= s <= 1.0

    def test_classifier_rejects_class_attribute(self, engine, suite):
        t = suite.classifier[0]
        with pytest.raises(QueryError):
            t.score(engine, {"bruises": {"true"}})

    def test_classifier_value_budget(self, engine, suite):
        t = suite.classifier[0]
        with pytest.raises(QueryError):
            t.score(engine, {"odor": {"none", "foul"}, "class": {"edible"}})
        with pytest.raises(QueryError):
            t.score(engine, {})

    def test_similar_pair_score_is_rank(self, engine, suite):
        t = suite.similar_pair[0]
        assert t.score(engine, ("white", "brown")) == 1.0

    def test_similar_pair_validates_values(self, engine, suite):
        t = suite.similar_pair[0]
        with pytest.raises(QueryError):
            t.score(engine, ("white", "white"))
        with pytest.raises(QueryError):
            t.score(engine, ("white", "purple"))

    def test_alternative_good_answer_low_error(self, engine, suite):
        t = suite.alternative[0]  # stalk-shape enlarged + chocolate spores
        err = t.score(engine, {"odor": {"foul"}})
        assert err < 0.05

    def test_alternative_bans_given_attributes(self, engine, suite):
        t = suite.alternative[0]
        with pytest.raises(QueryError):
            t.score(engine, {"stalk-shape": {"enlarged"}})

    def test_alternative_value_budget(self, engine, suite):
        t = suite.alternative[0]
        with pytest.raises(QueryError):
            t.score(engine, {
                "odor": {"foul", "pungent"}, "class": {"poisonous"},
            })


class TestCostModel:
    def test_prices_known_ops(self):
        cm = CostModel(noise_sigma=0.0)
        user = UserProfile("U1", 1, speed=1.0, diligence=1.0)
        rng = np.random.default_rng(0)
        minutes = cm.price([("toggle", "a", "b"), ("digest",)], user, rng)
        assert minutes == pytest.approx((3.0 + 35.0) / 60.0)

    def test_speed_scales(self):
        cm = CostModel(noise_sigma=0.0)
        slow = UserProfile("U1", 1, speed=2.0, diligence=1.0)
        fast = UserProfile("U2", 1, speed=0.5, diligence=1.0)
        rng = np.random.default_rng(0)
        ops = [("digest",)] * 3
        assert cm.price(ops, slow, rng) == pytest.approx(
            4 * cm.price(ops, fast, np.random.default_rng(0))
        )

    def test_unknown_op_raises(self):
        cm = CostModel()
        user = UserProfile("U1", 1, 1.0, 1.0)
        with pytest.raises(QueryError):
            cm.price([("teleport",)], user, np.random.default_rng(0))

    def test_roster(self):
        roster = UserProfile.roster(8, seed=1)
        assert len(roster) == 8
        assert [u.group for u in roster] == [1] * 4 + [2] * 4
        assert len({u.user_id for u in roster}) == 8
        with pytest.raises(QueryError):
            UserProfile.roster(7)


class TestAgents:
    @pytest.fixture()
    def user(self):
        return UserProfile("U1", 1, speed=1.0, diligence=0.9)

    def test_solr_classifier_valid_answer(self, engine, suite, user):
        agent = SolrAgent(engine, user, np.random.default_rng(0))
        out = agent.do_classifier(suite.classifier[0])
        suite.classifier[0].validate(out.answer)
        assert out.operations

    def test_tpfacet_classifier_beats_chance(self, engine, suite, user):
        agent = TPFacetAgent(engine, user, np.random.default_rng(0),
                             CADViewConfig(seed=1))
        out = agent.do_classifier(suite.classifier[0])
        score = suite.classifier[0].score(engine, out.answer)
        assert score > 0.5

    def test_tpfacet_fewer_operations(self, engine, suite, user):
        rng = np.random.default_rng(0)
        solr = SolrAgent(engine, user, rng).do_classifier(suite.classifier[0])
        tp = TPFacetAgent(
            engine, user, np.random.default_rng(0), CADViewConfig(seed=1)
        ).do_classifier(suite.classifier[0])
        assert len(tp.operations) < len(solr.operations)

    def test_tpfacet_similar_pair_easy_task_correct(self, engine, suite, user):
        agent = TPFacetAgent(engine, user, np.random.default_rng(0),
                             CADViewConfig(seed=1))
        out = agent.do_similar_pair(suite.similar_pair[0])
        assert suite.similar_pair[0].score(engine, out.answer) <= 2.0

    def test_solr_alternative_valid(self, engine, suite, user):
        agent = SolrAgent(engine, user, np.random.default_rng(1))
        out = agent.do_alternative(suite.alternative[0])
        suite.alternative[0].validate(out.answer)

    def test_tpfacet_alternative_low_error(self, engine, suite, user):
        agent = TPFacetAgent(engine, user, np.random.default_rng(1),
                             CADViewConfig(seed=1))
        out = agent.do_alternative(suite.alternative[0])
        err = suite.alternative[0].score(engine, out.answer)
        assert err < 0.05


class TestRunStudy:
    @pytest.fixture(scope="class")
    def results(self, mushroom):
        return run_study(mushroom, seed=2016)

    def test_cell_count(self, results):
        # 3 task types x 8 users x 2 displays
        assert len(results.measurements) == 48

    def test_crossover_balance(self, results):
        for tt in ("classifier", "similar_pair", "alternative"):
            cells = results.of(tt)
            assert len([m for m in cells if m.display == "Solr"]) == 8
            assert len([m for m in cells if m.display == "TPFacet"]) == 8
            # each user sees both displays
            by_user = {}
            for m in cells:
                by_user.setdefault(m.user_id, set()).add(m.display)
            assert all(v == {"Solr", "TPFacet"} for v in by_user.values())

    def test_each_task_done_by_four_users_per_display(self, results):
        cells = results.of("classifier")
        for task_id in ("T1a", "T1b"):
            for display in ("Solr", "TPFacet"):
                n = len([
                    m for m in cells
                    if m.task_id == task_id and m.display == display
                ])
                assert n == 4

    def test_tpfacet_faster_on_all_tasks(self, results):
        """The paper's headline: 4-5x faster on tasks 1-2, 1.5-2x on 3."""
        assert results.speedup("classifier") > 2.0
        assert results.speedup("similar_pair") > 2.0
        assert results.speedup("alternative") > 1.2

    def test_classifier_quality_direction(self, results):
        eff = results.analyze("classifier", "quality")
        assert eff.effect > 0  # TPFacet raises F1 (paper: +0.078)

    def test_alternative_error_direction(self, results):
        eff = results.analyze("alternative", "quality")
        assert eff.effect < 0  # TPFacet lowers retrieval error

    def test_time_effects_significant(self, results):
        for tt in ("classifier", "similar_pair"):
            eff = results.analyze(tt, "minutes")
            assert eff.effect < 0
            assert eff.p_value < 0.01

    def test_table_shape(self, results):
        table = results.table("classifier", "minutes")
        assert len(table) == 8
        assert all(set(v) == {"Solr", "TPFacet"} for v in table.values())

    def test_analyze_validations(self, results):
        with pytest.raises(QueryError):
            results.analyze("classifier", "bogus")
        with pytest.raises(QueryError):
            results.analyze("bogus_task", "quality")
