"""Unit tests for facet ordering and the markdown renderer."""

import pytest

from repro import CADViewBuilder, CADViewConfig
from repro.core import render_cadview_markdown
from repro.core.cadview import IUnitRef
from repro.facets import FacetedEngine, rank_facets
from repro.query import QueryEngine, parse_predicate


@pytest.fixture(scope="module")
def engine(mushroom):
    return FacetedEngine(mushroom)


class TestRankFacets:
    def test_all_queriable_ranked(self, engine):
        ranks = rank_facets(engine)
        assert len(ranks) == len(engine.queriable)
        scores = [r.score for r in ranks]
        assert scores == sorted(scores, reverse=True)

    def test_constant_facet_sinks(self, engine):
        ranks = rank_facets(engine)
        by_name = {r.attribute: r for r in ranks}
        # veil-type has a single value: zero entropy, zero score
        assert by_name["veil-type"].score == 0.0
        assert ranks[-1].score <= ranks[0].score

    def test_selected_facet_sinks_in_context(self, engine):
        before = {r.attribute: i for i, r in enumerate(rank_facets(engine))}
        after_list = rank_facets(engine, {"odor": {"foul"}})
        after = {r.attribute: i for i, r in enumerate(after_list)}
        # odor now has one value in the result: it must drop in rank
        assert after["odor"] > before["odor"]
        by_name = {r.attribute: r for r in after_list}
        assert by_name["odor"].entropy == 0.0

    def test_coverage_reported(self, engine):
        ranks = rank_facets(engine)
        for r in ranks:
            assert 0.0 <= r.coverage <= 1.0

    def test_numeric_facets_participate(self, cars):
        e = FacetedEngine(cars)
        ranks = rank_facets(e)
        names = [r.attribute for r in ranks]
        assert "Price" in names and "Mileage" in names


class TestMarkdownRender:
    @pytest.fixture(scope="class")
    def cad(self, cars):
        result = QueryEngine.select(
            cars, parse_predicate("BodyType = SUV AND Make IN (Jeep, Ford)")
        )
        return CADViewBuilder(CADViewConfig(seed=2)).build(
            result, "Make", exclude=("BodyType",)
        )

    def test_structure(self, cad):
        text = render_cadview_markdown(cad)
        lines = text.splitlines()
        assert lines[0].startswith("| Make |")
        assert set(lines[1].replace("|", "").strip()) <= {"-", " "}
        # every line has the same number of columns
        n_cols = lines[0].count("|")
        assert all(line.count("|") == n_cols for line in lines)

    def test_values_and_attrs_present(self, cad):
        text = render_cadview_markdown(cad)
        assert "**Jeep**" in text and "**Ford**" in text
        for attr in cad.compare_attributes:
            assert f"| {attr} |" in text

    def test_highlight_bolds(self, cad):
        v = cad.pivot_values[0]
        text = render_cadview_markdown(cad, highlight=[IUnitRef(v, 1)])
        u = cad.iunit(v, 1)
        assert f"**(n={u.size})**" in text
