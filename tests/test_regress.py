"""Unit tests for the benchmark regression gate (benchmarks/regress.py)."""

import importlib.util
import json
from pathlib import Path

import pytest


def _load_regress():
    """Import benchmarks/regress.py (not an installed package)."""
    path = Path(__file__).parent.parent / "benchmarks" / "regress.py"
    spec = importlib.util.spec_from_file_location("regress", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="module")
def regress():
    return _load_regress()


class TestLatencyLeaves:
    def test_collects_nested_ms_scalars(self, regress):
        payload = {
            "total_ms": 10.0,
            "n_states": 5,                       # not *_ms: ignored
            "phase_totals_ms": {"iunits": 1.0},  # dict, not scalar leaf
            "by_kind": {"select": {"p50_ms": 2.0}},
            "series": [{"total_ms": 3.0}, {"total_ms": 4.0}],
            "latencies_ms": [1.0, 2.0, 3.0],     # raw samples: ignored
        }
        leaves = dict(
            (path, value)
            for path, _key, value in regress.latency_leaves(payload)
        )
        assert leaves == {
            "total_ms": 10.0,
            "by_kind.select.p50_ms": 2.0,
            "series[0].total_ms": 3.0,
            "series[1].total_ms": 4.0,
        }

    def test_bools_are_not_latencies(self, regress):
        assert list(regress.latency_leaves({"flag_ms": True})) == []

    def test_quantized_key_detection(self, regress):
        assert regress.is_quantized_key("p50_ms")
        assert regress.is_quantized_key("p99_ms")
        assert not regress.is_quantized_key("total_ms")
        assert not regress.is_quantized_key("mean_ms")


class TestComparePayloads:
    def test_within_threshold_is_ok(self, regress):
        records = regress.compare_payloads(
            {"total_ms": 100.0}, {"total_ms": 160.0},
        )
        assert [r["status"] for r in records] == ["ok"]

    def test_regression_past_threshold(self, regress):
        # 100 * 1.75 + 25 = 200; 201 regresses
        records = regress.compare_payloads(
            {"total_ms": 100.0}, {"total_ms": 201.0},
        )
        assert [r["status"] for r in records] == ["regression"]

    def test_quantized_leaf_gets_looser_threshold(self, regress):
        # a one-bucket flip (2.5x) passes for p50_ms but would fail for
        # a continuous leaf of the same magnitude
        quantized = regress.compare_payloads(
            {"p50_ms": 100.0}, {"p50_ms": 250.0},
        )
        assert [r["status"] for r in quantized] == ["ok"]
        continuous = regress.compare_payloads(
            {"mean_ms": 100.0}, {"mean_ms": 250.0},
        )
        assert [r["status"] for r in continuous] == ["regression"]

    def test_abs_slack_forgives_tiny_phases(self, regress):
        # 0.2ms -> 20ms is a 100x blowup but under the 25ms noise floor
        records = regress.compare_payloads(
            {"others_ms": 0.2}, {"others_ms": 20.0},
        )
        assert [r["status"] for r in records] == ["ok"]

    def test_improvement_reported_not_failed(self, regress):
        records = regress.compare_payloads(
            {"total_ms": 500.0}, {"total_ms": 100.0},
        )
        assert [r["status"] for r in records] == ["improvement"]

    def test_missing_leaf_reported(self, regress):
        records = regress.compare_payloads(
            {"total_ms": 100.0}, {"other_ms": 100.0},
        )
        by_status = {r["status"] for r in records}
        assert by_status == {"missing"}


class TestCompareDirs:
    def _write(self, directory, name, payload):
        directory.mkdir(parents=True, exist_ok=True)
        (directory / f"BENCH_{name}.json").write_text(json.dumps(payload))

    def test_ok_verdict(self, regress, tmp_path):
        self._write(tmp_path / "base", "x", {"total_ms": 100.0})
        self._write(tmp_path / "cur", "x", {"total_ms": 110.0})
        verdict = regress.compare_dirs(
            str(tmp_path / "base"), str(tmp_path / "cur")
        )
        assert verdict["verdict"] == "ok"
        assert verdict["counts"]["ok"] == 1

    def test_regression_verdict(self, regress, tmp_path):
        self._write(tmp_path / "base", "x", {"total_ms": 100.0})
        self._write(tmp_path / "cur", "x", {"total_ms": 9_000.0})
        verdict = regress.compare_dirs(
            str(tmp_path / "base"), str(tmp_path / "cur")
        )
        assert verdict["verdict"] == "regression"

    def test_missing_bench_file_is_error(self, regress, tmp_path):
        self._write(tmp_path / "base", "x", {"total_ms": 100.0})
        (tmp_path / "cur").mkdir()
        verdict = regress.compare_dirs(
            str(tmp_path / "base"), str(tmp_path / "cur")
        )
        assert verdict["verdict"] == "error"
        assert verdict["problems"]

    def test_main_exit_codes_and_verdict_file(self, regress, tmp_path):
        self._write(tmp_path / "base", "x", {"total_ms": 100.0})
        self._write(tmp_path / "cur", "x", {"total_ms": 110.0})
        out = tmp_path / "verdict.json"
        rc = regress.main([
            "--baseline", str(tmp_path / "base"),
            "--current", str(tmp_path / "cur"),
            "--out", str(out),
        ])
        assert rc == 0
        assert json.loads(out.read_text())["verdict"] == "ok"

        self._write(tmp_path / "cur", "x", {"total_ms": 9_000.0})
        assert regress.main([
            "--baseline", str(tmp_path / "base"),
            "--current", str(tmp_path / "cur"),
        ]) == 1
        assert regress.main([
            "--baseline", str(tmp_path / "nope"),
            "--current", str(tmp_path / "cur"),
        ]) == 2

    def test_committed_baselines_have_leaves(self, regress):
        baselines = Path(__file__).parent.parent \
            / "benchmarks" / "baselines"
        names = sorted(p.name for p in baselines.glob("BENCH_*.json"))
        assert names == [
            "BENCH_fig8_worst_case.json",
            "BENCH_session_replay.json",
            "BENCH_workload_latency.json",
        ]
        for name in names:
            payload = json.loads((baselines / name).read_text())
            assert list(regress.latency_leaves(payload)), name


class TestWorkGate:
    """Deterministic work counters are compared with exact equality."""

    def _write(self, directory, name, payload):
        directory.mkdir(parents=True, exist_ok=True)
        (directory / f"BENCH_{name}.json").write_text(json.dumps(payload))

    def test_work_leaves_found_at_any_nesting(self, regress):
        payload = {
            "work": {"totals": {"work.x": 3},
                     "by_kind": {"select": {"work.x": 3}}},
            "results": [{"work": {"work.y": 1}}],
        }
        leaves = dict(regress.work_leaves(payload))
        assert leaves == {
            "work.totals.work.x": 3,
            "work.by_kind.select.work.x": 3,
            "results[0].work.work.y": 1,
        }

    def test_equal_counts_ok(self, regress):
        base = {"work": {"totals": {"work.x": 5}}}
        records, problems = regress.compare_work(base, base, "B")
        assert [r["status"] for r in records] == ["ok"]
        assert problems == []

    def test_any_drift_is_regression_no_slack(self, regress):
        base = {"work": {"totals": {"work.x": 1_000_000}}}
        cur = {"work": {"totals": {"work.x": 1_000_001}}}
        records, _ = regress.compare_work(base, cur, "B")
        assert [r["status"] for r in records] == ["regression"]

    def test_baseline_without_work_block_demands_rebaseline(self, regress):
        records, problems = regress.compare_work(
            {"total_ms": 1.0}, {"work": {"totals": {"work.x": 5}}}, "B"
        )
        assert records == []
        assert len(problems) == 1
        assert "re-baseline needed" in problems[0]

    def test_new_counter_in_current_demands_rebaseline(self, regress):
        base = {"work": {"totals": {"work.x": 5}}}
        cur = {"work": {"totals": {"work.x": 5, "work.y": 1}}}
        _, problems = regress.compare_work(base, cur, "B")
        assert any("re-baseline" in p for p in problems)

    def test_compare_dirs_fails_on_work_drift(self, regress, tmp_path):
        self._write(tmp_path / "base", "x",
                    {"total_ms": 100.0, "work": {"totals": {"work.x": 5}}})
        self._write(tmp_path / "cur", "x",
                    {"total_ms": 100.0, "work": {"totals": {"work.x": 6}}})
        verdict = regress.compare_dirs(
            str(tmp_path / "base"), str(tmp_path / "cur")
        )
        assert verdict["verdict"] == "regression"
        rendered = regress.render(verdict)
        assert "exact match required" in rendered

    def test_compare_dirs_stale_baseline_is_error(self, regress, tmp_path):
        self._write(tmp_path / "base", "x", {"total_ms": 100.0})
        self._write(tmp_path / "cur", "x",
                    {"total_ms": 100.0, "work": {"totals": {"work.x": 5}}})
        verdict = regress.compare_dirs(
            str(tmp_path / "base"), str(tmp_path / "cur")
        )
        assert verdict["verdict"] == "error"
        assert any("re-baseline needed" in p for p in verdict["problems"])

    def test_committed_baselines_carry_work_blocks(self, regress):
        baselines = Path(__file__).parent.parent \
            / "benchmarks" / "baselines"
        for path in sorted(baselines.glob("BENCH_*.json")):
            payload = json.loads(path.read_text())
            assert dict(regress.work_leaves(payload)), path.name
