"""Unit tests for the V-optimal histogram DP (Jagadish-Suel)."""

import numpy as np
import pytest

from repro.discretize import bin_indices, v_optimal_bins, v_optimal_partition
from repro.errors import QueryError


def sse(w):
    w = np.asarray(w, dtype=float)
    return float(((w - w.mean()) ** 2).sum())


def total_error(weights, ranges):
    return sum(sse(weights[i:j]) for i, j in ranges)


def brute_force_best(weights, b):
    """Exhaustive optimal partition error for small inputs."""
    n = len(weights)
    best = [float("inf")]

    def rec(start, remaining, acc):
        if acc >= best[0]:
            return
        if remaining == 1:
            best[0] = min(best[0], acc + sse(weights[start:]))
            return
        for cut in range(start + 1, n - remaining + 2):
            rec(cut, remaining - 1, acc + sse(weights[start:cut]))

    rec(0, b, 0.0)
    return best[0]


class TestPartition:
    def test_covers_and_is_contiguous(self):
        w = [1, 1, 9, 9, 1, 1]
        ranges = v_optimal_partition(w, 3)
        assert ranges[0][0] == 0 and ranges[-1][1] == len(w)
        for (a, b), (c, d) in zip(ranges, ranges[1:]):
            assert b == c

    def test_obvious_split(self):
        w = [1, 1, 1, 100, 100, 100]
        ranges = v_optimal_partition(w, 2)
        assert ranges == [(0, 3), (3, 6)]

    def test_matches_brute_force(self):
        rng = np.random.default_rng(3)
        for trial in range(10):
            w = rng.integers(0, 50, size=8).astype(float)
            for b in (2, 3, 4):
                ranges = v_optimal_partition(w, b)
                assert total_error(w, ranges) == pytest.approx(
                    brute_force_best(w, b), abs=1e-9
                )

    def test_more_buckets_than_items(self):
        ranges = v_optimal_partition([5.0, 6.0], 10)
        assert len(ranges) == 2

    def test_single_bucket(self):
        ranges = v_optimal_partition([1, 2, 3], 1)
        assert ranges == [(0, 3)]

    def test_empty_raises(self):
        with pytest.raises(QueryError):
            v_optimal_partition([], 2)

    def test_zero_buckets_raises(self):
        with pytest.raises(QueryError):
            v_optimal_partition([1.0], 0)


class TestVOptimalBins:
    def test_separates_modes(self):
        rng = np.random.default_rng(1)
        vals = np.concatenate([
            rng.normal(0, 0.5, 400), rng.normal(10, 0.5, 400),
        ])
        bins = v_optimal_bins(vals, 4)
        # the empty region between the modes must be isolated: the bin
        # containing the midpoint (5.0) holds almost no tuples
        idx = bin_indices(vals, bins)
        counts = np.bincount(idx[idx >= 0], minlength=len(bins))
        mid_bin = next(i for i, b in enumerate(bins) if b.contains(5.0))
        # (the gap bin also absorbs the low-count mode tails)
        assert counts[mid_bin] < 0.12 * len(vals)
        # and neither mode is split away into the gap bin
        assert counts.max() > 0.3 * len(vals)

    def test_all_values_covered(self):
        rng = np.random.default_rng(2)
        vals = rng.exponential(5.0, 1000)
        bins = v_optimal_bins(vals, 6)
        idx = bin_indices(vals, bins)
        assert (idx >= 0).all()

    def test_pre_aggregation_kicks_in(self):
        vals = np.linspace(0, 1, 5000)  # 5000 distinct values
        bins = v_optimal_bins(vals, 5, max_distinct=64)
        assert 1 <= len(bins) <= 5
        idx = bin_indices(vals, bins)
        assert (idx >= 0).all()

    def test_all_missing_raises(self):
        with pytest.raises(QueryError):
            v_optimal_bins([np.nan], 3)

    def test_fewer_distinct_than_bins(self):
        bins = v_optimal_bins([1.0, 2.0, 1.0], 5)
        assert len(bins) <= 2
