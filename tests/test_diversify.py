"""Unit tests for diversified top-k (div-astar and the greedy baseline)."""

import numpy as np
import pytest
from itertools import combinations

from repro.errors import CADViewError
from repro.iunits import (
    IUnit, div_astar, div_greedy, diversified_topk, similarity_graph,
)


def brute_force(scores, adj, k):
    """Exhaustive optimum of the diversified top-k objective."""
    n = len(scores)
    best = 0.0
    for size in range(1, k + 1):
        for combo in combinations(range(n), size):
            if any(adj[a][b] for a, b in combinations(combo, 2)):
                continue
            best = max(best, sum(scores[i] for i in combo))
    return best


def no_edges(n):
    return np.zeros((n, n), dtype=bool)


class TestDivAstar:
    def test_no_conflicts_takes_top_k(self):
        scores = [5.0, 4.0, 3.0, 2.0]
        got = div_astar(scores, no_edges(4), 2)
        assert got == [0, 1]

    def test_conflict_forces_skip(self):
        scores = [5.0, 4.0, 3.0]
        adj = no_edges(3)
        adj[0][1] = adj[1][0] = True
        got = div_astar(scores, adj, 2)
        assert got == [0, 2]

    def test_greedy_trap(self):
        """The case where greedy is suboptimal: the top item conflicts
        with everything else."""
        scores = [10.0, 9.0, 9.0, 9.0]
        adj = no_edges(4)
        for j in (1, 2, 3):
            adj[0][j] = adj[j][0] = True
        exact = div_astar(scores, adj, 3)
        greedy = div_greedy(scores, adj, 3)
        assert sum(scores[i] for i in exact) == 27.0
        assert sum(scores[i] for i in greedy) == 10.0

    def test_matches_brute_force_random(self):
        rng = np.random.default_rng(4)
        for trial in range(20):
            n = int(rng.integers(3, 10))
            scores = rng.random(n) * 10
            adj = rng.random((n, n)) < 0.3
            adj = np.triu(adj, 1)
            adj = adj | adj.T
            k = int(rng.integers(1, n + 1))
            got = div_astar(scores, adj, k)
            # validity
            assert len(got) <= k
            for a, b in combinations(got, 2):
                assert not adj[a][b]
            # optimality
            assert sum(scores[i] for i in got) == pytest.approx(
                brute_force(scores, adj, k)
            )

    def test_k_zero(self):
        assert div_astar([1.0], no_edges(1), 0) == []

    def test_empty(self):
        assert div_astar([], np.zeros((0, 0), bool), 3) == []

    def test_negative_scores_rejected(self):
        with pytest.raises(CADViewError):
            div_astar([-1.0], no_edges(1), 1)

    def test_adjacency_shape_checked(self):
        with pytest.raises(CADViewError):
            div_astar([1.0, 2.0], no_edges(3), 1)

    def test_result_sorted_by_score(self):
        scores = [1.0, 5.0, 3.0]
        got = div_astar(scores, no_edges(3), 3)
        assert got == [1, 2, 0]


class TestDivGreedy:
    def test_respects_conflicts(self):
        scores = [5.0, 4.0, 3.0]
        adj = no_edges(3)
        adj[0][1] = adj[1][0] = True
        assert div_greedy(scores, adj, 3) == [0, 2]

    def test_never_exceeds_k(self):
        assert len(div_greedy([3.0, 2.0, 1.0], no_edges(3), 2)) == 2


def unit(vec, size=10, value="v"):
    return IUnit("p", value, size, ("x",),
                 {"x": np.asarray(vec, float)}, {"x": ()})


class TestSimilarityGraph:
    def test_edges_at_threshold(self):
        units = [unit([1, 0]), unit([1, 0.05]), unit([0, 1])]
        adj = similarity_graph(units, tau=0.95)
        assert adj[0][1] and adj[1][0]
        assert not adj[0][2]
        assert not adj.diagonal().any()


class TestDiversifiedTopk:
    def test_redundant_units_deduplicated(self):
        units = [
            unit([10, 0], size=100),
            unit([10, 0.1], size=90),   # near-duplicate of the first
            unit([0, 10], size=50),
        ]
        top = diversified_topk(units, k=2, tau=0.95)
        assert len(top) == 2
        assert top[0].size == 100
        assert top[1].size == 50      # the duplicate was skipped

    def test_uids_assigned_in_rank_order(self):
        units = [unit([1, 0], size=s) for s in (10, 30, 20)]
        top = diversified_topk(units, k=3, tau=2.0)  # tau>1: no edges
        assert [u.uid for u in top] == [1, 2, 3]
        assert [u.size for u in top] == [30, 20, 10]

    def test_empty_input(self):
        assert diversified_topk([], 3, 0.5) == []

    def test_greedy_flag(self):
        units = [unit([1, 0], size=s) for s in (10, 30, 20)]
        exact = diversified_topk(units, 2, 2.0, exact=True)
        greedy = diversified_topk(units, 2, 2.0, exact=False)
        assert [u.size for u in exact] == [u.size for u in greedy]
