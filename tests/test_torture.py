"""The kill -9 torture harness: the durability contract under fire.

Every iteration launches a real ``repro serve --state-dir`` process,
SIGKILLs it at a planned ``wal.*`` fault site, restarts recovery, and
checks the three-way contract against the fsync-ordered ack log:

* nothing the client was promised is lost,
* nothing the client was never promised resurrects,
* a torn tail is truncated loudly, never silently.

The full run below is the acceptance gate the CI ``torture`` job
replays: >= 20 deterministic kill points covering all four sites.
"""

from __future__ import annotations

import json
import os

from repro.serve.durability.torture import (
    SITES,
    TORTURE_MUTATIONS,
    run_torture,
    torture_schedule,
    write_torture_workload,
)


class TestSchedule:
    def test_deterministic_and_covers_every_site(self):
        schedule = torture_schedule(20)
        assert schedule == torture_schedule(20)
        assert len(schedule) == 20
        assert {site for site, _ in schedule} == set(SITES)
        # any >= 4-iteration prefix already covers all four sites
        assert {site for site, _ in schedule[:4]} == set(SITES)

    def test_rotation_and_compaction_land_on_even_seqs(self):
        """Under the torture config a snapshot empties the live segment
        at every even seq, so rotation/compaction can only fire there —
        an odd target would be a vacuous (never-firing) kill point."""
        for site, seq in torture_schedule(48):
            assert 1 <= seq <= TORTURE_MUTATIONS
            if site in ("wal.segment_rotate", "wal.mid_compaction"):
                assert seq % 2 == 0

    def test_workload_is_mutation_rich(self, tmp_path):
        path = write_torture_workload(str(tmp_path / "wl.jsonl"))
        lines = [
            json.loads(line)
            for line in open(path, encoding="utf-8")
        ]
        assert lines[0]["kind"] == "session"
        mutations = [
            rec for rec in lines[1:]
            if rec["statement"].split()[0] in ("CREATE", "DROP", "REORDER")
        ]
        assert len(mutations) == TORTURE_MUTATIONS


class TestTortureRun:
    def test_twenty_kill_points_lose_nothing(self, tmp_path):
        """The acceptance run: 20 SIGKILLs across all four wal.* sites;
        every recovered catalog must equal the acked prefix exactly."""
        report = run_torture(
            str(tmp_path / "wl.jsonl"),
            str(tmp_path / "torture"),
            iterations=20,
            rows=80,
        )
        assert report["ok"], report["failures"]
        assert report["killed"] == 20
        assert set(report["site_counts"]) == set(SITES)
        assert all(n >= 4 for n in report["site_counts"].values())
        # the faultless relaunches after every 5th kill came up clean
        assert report["restarts_verified"] == 4
        # pre-fsync crashes write a torn prefix; recovery must have
        # seen (and truncated) at least those
        assert report["torn_tails"] >= 1
        # failure artifacts are only written on failure
        artifacts = [
            name for name in os.listdir(tmp_path / "torture")
            if name.startswith("torture-failure-")
        ]
        assert artifacts == []
