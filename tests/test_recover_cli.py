"""The ``repro recover`` inspector and SIGTERM during startup recovery.

The in-process tests drive ``main()`` against hand-built state dirs
(raw ``encode_record`` bytes, no supervisor needed).  The subprocess
test at the bottom is satellite work for the durability tentpole: a
SIGTERM that lands *while startup recovery is replaying the WAL* must
still produce a graceful drain and a consistent state dir — the
handler is installed before the supervisor is constructed precisely
so that window is covered.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

from repro.cli import EXIT_BUILD_FAILED, EXIT_OK, EXIT_USAGE, main
from repro.serve.durability import encode_record, recover_state

REPO = Path(__file__).parent.parent

CREATE = (
    "CREATE CADVIEW v AS SET pivot = Make SELECT Price FROM data "
    "LIMIT COLUMNS 3 IUNITS 2"
)
DROP = "DROP CADVIEW v"


def _state_dir(tmp_path, records, extra=b"", name="wal-00000000.log"):
    state = tmp_path / "state"
    state.mkdir(exist_ok=True)
    blob = b"".join(
        encode_record(seq, 0, sql, "s") for seq, sql in records
    )
    (state / name).write_bytes(blob + extra)
    return str(state)


class TestRecoverCommand:
    def test_missing_dir_is_a_usage_error(self, tmp_path, capsys):
        rc = main(["recover", str(tmp_path / "absent")])
        assert rc == EXIT_USAGE
        assert "does not exist" in capsys.readouterr().err

    def test_healthy_dir_recovers_and_reports(self, tmp_path, capsys):
        state = _state_dir(tmp_path, [(1, CREATE)])
        rc = main(["recover", state, "--json"])
        assert rc == EXIT_OK
        payload = json.loads(capsys.readouterr().out)
        assert payload["last_seq"] == 1
        assert payload["views"] == {"v": 0}
        assert payload["journal_lengths"] == {"0": 1}
        assert payload["torn_tail"] is None

    def test_human_rendering_lists_views(self, tmp_path, capsys):
        state = _state_dir(tmp_path, [(1, CREATE)])
        rc = main(["recover", state])
        assert rc == EXIT_OK
        out = capsys.readouterr().out
        assert "recovered: last_seq=1" in out
        assert "v -> shard 0" in out

    def test_torn_tail_reported_but_left_in_place(self, tmp_path, capsys):
        torn = encode_record(2, 0, DROP, "s")[:10]
        state = _state_dir(tmp_path, [(1, CREATE)], extra=torn)
        segment = Path(state) / "wal-00000000.log"
        before = segment.read_bytes()
        rc = main(["recover", state, "--json"])
        assert rc == EXIT_OK
        captured = capsys.readouterr()
        assert "torn WAL tail" in captured.err
        payload = json.loads(captured.out)
        assert payload["torn_tail"]["truncated"] is False
        # read-only by default: the segment is byte-for-byte untouched
        assert segment.read_bytes() == before

    def test_truncate_repairs_the_tail(self, tmp_path, capsys):
        torn = encode_record(2, 0, DROP, "s")[:10]
        state = _state_dir(tmp_path, [(1, CREATE)], extra=torn)
        rc = main(["recover", state, "--truncate"])
        assert rc == EXIT_OK
        assert "truncated" in capsys.readouterr().out
        # the repair is durable: a second pass sees a clean dir
        rc = main(["recover", state, "--json"])
        captured = capsys.readouterr()
        assert rc == EXIT_OK
        assert "torn WAL tail" not in captured.err
        assert json.loads(captured.out)["torn_tail"] is None

    def test_mid_history_damage_exits_two(self, tmp_path, capsys):
        good = encode_record(2, 0, DROP, "s")
        state = _state_dir(
            tmp_path, [(1, CREATE)], extra=good[:10] + good
        )
        rc = main(["recover", state])
        assert rc == EXIT_BUILD_FAILED
        assert "unrecoverable" in capsys.readouterr().err

    def test_shard_mismatch_exits_two(self, tmp_path, capsys):
        state = tmp_path / "state"
        state.mkdir()
        (state / "snapshot-000000000001.json").write_text(json.dumps({
            "kind": "repro-wal-snapshot", "last_seq": 1, "shards": 2,
            "view_shard": {}, "journals": {},
        }))
        rc = main(["recover", str(state), "--procs", "4"])
        assert rc == EXIT_BUILD_FAILED
        assert "--procs 2" in capsys.readouterr().err


class TestSigtermDuringRecovery:
    def test_sigterm_mid_recovery_drains_clean(self, tmp_path):
        """SIGTERM landing while startup recovery replays the WAL.

        The state dir carries a torn tail, so recovery prints its loud
        warning to stderr *from inside supervisor construction* — that
        line is the sync point: the signal is sent the moment it
        appears, which is after the CLI armed its handler but while
        (or microseconds after) the WAL replay is running.  The
        process must still drain gracefully (exit 0) and leave a
        state dir a later pass recovers cleanly.
        """
        torn = encode_record(2, 0, DROP, "s")[:10]
        state = _state_dir(tmp_path, [(1, CREATE)], extra=torn)
        workload = tmp_path / "wl.jsonl"
        workload.write_text("\n".join([
            json.dumps({"kind": "session", "dataset": "usedcars",
                        "rows": 400, "seed": 7}),
            json.dumps({"kind": "statement",
                        "statement": "SELECT Make FROM data"}),
            json.dumps({"kind": "statement", "statement": DROP}),
        ]) + "\n")
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO / "src")
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve", str(workload),
                "--stress", "--procs", "1", "--state-dir", state,
            ],
            cwd=str(REPO), env=env,
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
        )
        stderr_lines: list[str] = []
        saw_recovery = threading.Event()

        def _pump():
            for line in proc.stderr:
                stderr_lines.append(line)
                if "WAL recovery" in line:
                    saw_recovery.set()

        pump = threading.Thread(target=_pump, daemon=True)
        pump.start()
        assert saw_recovery.wait(90), "".join(stderr_lines)
        proc.send_signal(signal.SIGTERM)
        stdout, _ = proc.communicate(timeout=120)
        pump.join(timeout=10)
        assert proc.returncode == 0, (stdout, "".join(stderr_lines))
        # the interrupted run left a consistent dir: the torn tail was
        # truncated at startup and whatever was acked is replayable
        rec = recover_state(state, truncate=False)
        assert not rec.warnings, rec.warnings
        assert rec.last_seq >= 1
