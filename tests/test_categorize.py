"""Unit tests for the decision-tree result categorization baseline."""

import numpy as np
import pytest

from repro.core import CategoryTree
from repro.discretize import Discretizer
from repro.errors import QueryError
from repro.query import Eq, QueryEngine


@pytest.fixture(scope="module")
def suv_view(cars):
    result = QueryEngine.select(cars, Eq("BodyType", "SUV"))
    return Discretizer(nbins=4).fit(result)


class TestFit:
    def test_basic_structure(self, suv_view):
        tree = CategoryTree.fit(
            suv_view, attributes=("Make", "Drivetrain", "Engine"),
            max_depth=2, min_leaf=30,
        )
        assert not tree.root.is_leaf
        assert tree.depth() <= 2
        assert tree.root.size == len(suv_view)

    def test_leaves_partition_subsets(self, suv_view):
        tree = CategoryTree.fit(
            suv_view, attributes=("Make", "Drivetrain"), max_depth=2,
            min_leaf=30,
        )
        leaves = tree.leaves()
        assert leaves
        # leaves are disjoint sub-populations: total never exceeds root
        assert sum(l.size for l in leaves) <= tree.root.size

    def test_min_leaf_respected(self, suv_view):
        tree = CategoryTree.fit(
            suv_view, attributes=("Make", "Model"), max_depth=3,
            min_leaf=50,
        )
        for leaf in tree.leaves():
            if leaf.path:  # the root may be small in degenerate cases
                assert leaf.size >= 50

    def test_max_fanout_excludes_wide_attributes(self, suv_view):
        tree = CategoryTree.fit(
            suv_view, attributes=("Model", "Drivetrain"), max_depth=1,
            min_leaf=10, max_fanout=5,
        )
        # Model has dozens of values: only Drivetrain may split
        assert tree.root.attribute in (None, "Drivetrain")

    def test_attribute_not_reused_on_path(self, suv_view):
        tree = CategoryTree.fit(
            suv_view, attributes=("Drivetrain", "Engine"), max_depth=3,
            min_leaf=10,
        )

        def check(node, used):
            if node.is_leaf:
                return
            assert node.attribute not in used
            for child in node.children.values():
                check(child, used | {node.attribute})

        check(tree.root, set())

    def test_validation(self, suv_view):
        with pytest.raises(QueryError):
            CategoryTree.fit(suv_view, max_depth=0)
        with pytest.raises(QueryError):
            CategoryTree.fit(suv_view, attributes=("bogus",))

    def test_single_row_view_is_leaf(self, suv_view):
        one = suv_view.restrict(
            np.arange(len(suv_view)) == 0
        )
        tree = CategoryTree.fit(one, attributes=("Make",), min_leaf=5)
        assert tree.root.is_leaf


class TestViews:
    def test_describe(self, suv_view):
        tree = CategoryTree.fit(
            suv_view, attributes=("Drivetrain", "Engine"), max_depth=2,
            min_leaf=30,
        )
        text = tree.describe()
        assert "(all)" in text
        assert "[" in text  # sizes shown

    def test_labels(self, suv_view):
        tree = CategoryTree.fit(
            suv_view, attributes=("Drivetrain",), max_depth=1, min_leaf=20,
        )
        for label, child in tree.root.children.items():
            assert child.label() == f"Drivetrain={label}"

    def test_navigation_cost_positive(self, suv_view):
        tree = CategoryTree.fit(
            suv_view, attributes=("Drivetrain", "Engine"), max_depth=2,
            min_leaf=30,
        )
        assert tree.navigation_cost() > 0

    def test_deeper_tree_costs_more(self, suv_view):
        shallow = CategoryTree.fit(
            suv_view, attributes=("Drivetrain", "Engine", "Make"),
            max_depth=1, min_leaf=20,
        )
        deep = CategoryTree.fit(
            suv_view, attributes=("Drivetrain", "Engine", "Make"),
            max_depth=3, min_leaf=20,
        )
        assert deep.navigation_cost() >= shallow.navigation_cost()
