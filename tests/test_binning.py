"""Unit tests for binning strategies and bin labels."""

import numpy as np
import pytest

from repro.discretize import (
    Bin, bin_indices, equal_depth_bins, equal_width_bins, format_number,
)
from repro.errors import QueryError


class TestFormatNumber:
    @pytest.mark.parametrize("x,expected", [
        (25_000, "25K"),
        (10_000, "10K"),
        (12_500, "12.5K"),
        (2011, "2011"),
        (17.5, "17.5"),
        (1_000_000, "1M"),
        (2_500_000, "2.5M"),
        (0, "0"),
        (3.0, "3"),
    ])
    def test_formats(self, x, expected):
        assert format_number(x) == expected


class TestBin:
    def test_label_range(self):
        assert Bin(15_000, 20_000).label == "15K-20K"

    def test_label_degenerate(self):
        assert Bin(2011, 2011, closed_hi=True).label == "2011"

    def test_contains_half_open(self):
        b = Bin(10, 20)
        assert b.contains(10) and b.contains(19.9)
        assert not b.contains(20)

    def test_contains_closed(self):
        b = Bin(10, 20, closed_hi=True)
        assert b.contains(20)

    def test_predicate_roundtrip(self, toy_table):
        b = Bin(100, 300)
        mask = b.predicate("price").mask(toy_table)
        prices = toy_table["price"].numbers
        for got, p in zip(mask, prices):
            if np.isnan(p):
                assert not got
            else:
                assert got == b.contains(p)


class TestEqualWidth:
    def test_round_edges(self):
        vals = np.linspace(1500, 64_000, 500)
        bins = equal_width_bins(vals, 6)
        widths = {round(b.hi - b.lo) for b in bins}
        assert len(widths) == 1  # uniform width
        assert all(b.lo % 1000 == 0 for b in bins)

    def test_covers_all_values(self):
        vals = np.array([3.0, 9.0, 15.2, 7.7, 0.1])
        bins = equal_width_bins(vals, 3)
        idx = bin_indices(vals, bins)
        assert (idx >= 0).all()

    def test_constant_column_single_bin(self):
        bins = equal_width_bins([5.0, 5.0], 4)
        assert len(bins) == 1
        assert bins[0].label == "5"

    def test_nbins_zero_raises(self):
        with pytest.raises(QueryError):
            equal_width_bins([1.0], 0)

    def test_all_missing_raises(self):
        with pytest.raises(QueryError):
            equal_width_bins([np.nan, np.nan], 3)


class TestEqualDepth:
    def test_balanced_counts(self):
        rng = np.random.default_rng(0)
        vals = rng.normal(0, 1, 1000)
        bins = equal_depth_bins(vals, 4)
        idx = bin_indices(vals, bins)
        counts = np.bincount(idx[idx >= 0], minlength=len(bins))
        assert counts.min() > 180  # near 250 each

    def test_heavy_ties_merge(self):
        vals = np.array([1.0] * 90 + [2.0] * 10)
        bins = equal_depth_bins(vals, 5)
        assert len(bins) <= 2

    def test_covers_extremes(self):
        vals = np.arange(100.0)
        bins = equal_depth_bins(vals, 4)
        idx = bin_indices(vals, bins)
        assert idx[0] == 0 and idx[-1] == len(bins) - 1


class TestBinIndices:
    def test_missing_is_minus_one(self):
        bins = [Bin(0, 10), Bin(10, 20, closed_hi=True)]
        idx = bin_indices([5.0, np.nan, 25.0, -3.0], bins)
        assert list(idx) == [0, -1, -1, -1]

    def test_max_in_last_bin(self):
        bins = [Bin(0, 10), Bin(10, 20, closed_hi=True)]
        assert bin_indices([20.0], bins)[0] == 1

    def test_boundary_goes_right(self):
        bins = [Bin(0, 10), Bin(10, 20, closed_hi=True)]
        assert bin_indices([10.0], bins)[0] == 1
