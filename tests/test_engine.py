"""Unit tests for the query engine."""

import pytest

from repro.errors import QueryError
from repro.query import Between, Eq, QueryEngine, TruePred


@pytest.fixture()
def engine(toy_table):
    e = QueryEngine()
    e.register("Hotels", toy_table)
    return e


class TestCatalog:
    def test_register_and_lookup(self, engine, toy_table):
        assert engine.table("Hotels") is toy_table

    def test_unknown_table(self, engine):
        with pytest.raises(QueryError, match="unknown table"):
            engine.table("Nope")

    def test_table_names(self, engine, toy_table):
        engine.register("B", toy_table)
        assert engine.table_names == ("B", "Hotels")


class TestSelect:
    def test_no_predicate_returns_all(self, engine, toy_table):
        assert len(engine.select(toy_table)) == len(toy_table)

    def test_predicate(self, engine, toy_table):
        r = engine.select(toy_table, Eq("city", "Paris"))
        assert len(r) == 3

    def test_columns(self, engine, toy_table):
        r = engine.select(toy_table, columns=["city"])
        assert r.schema.names == ("city",)

    def test_limit(self, engine, toy_table):
        assert len(engine.select(toy_table, limit=2)) == 2

    def test_count(self, engine, toy_table):
        assert engine.count(toy_table, Eq("city", "Paris")) == 3
        assert engine.count(toy_table) == len(toy_table)
        assert engine.count(toy_table, TruePred()) == len(toy_table)

    def test_group_count(self, engine, toy_table):
        counts = engine.group_count(toy_table, "city", Between("stars", 3, 5))
        assert counts == {"Paris": 3, "Lyon": 1, "Nice": 2}


class TestOrderBy:
    def test_numeric_ascending(self, engine, toy_table):
        r = engine.order_by(toy_table, ["stars"], [True])
        stars = [row["stars"] for row in r.iter_rows()]
        assert stars == sorted(stars)

    def test_numeric_descending(self, engine, toy_table):
        r = engine.order_by(toy_table, ["price"], [False])
        prices = [row["price"] for row in r.iter_rows() if row["price"]]
        assert prices == sorted(prices, reverse=True)

    def test_missing_sorts_last_ascending(self, engine, toy_table):
        r = engine.order_by(toy_table, ["price"], [True])
        assert r.row(len(r) - 1)["price"] is None

    def test_categorical_alphabetical(self, engine, toy_table):
        r = engine.order_by(toy_table, ["city"], [True])
        cities = [row["city"] for row in r.iter_rows() if row["city"]]
        assert cities == sorted(cities)

    def test_multi_key(self, engine, toy_table):
        r = engine.order_by(toy_table, ["city", "stars"], [True, False])
        lyon = [row for row in r.iter_rows() if row["city"] == "Lyon"]
        assert [row["stars"] for row in lyon] == [4.0, 2.0]

    def test_length_mismatch_raises(self, engine, toy_table):
        with pytest.raises(QueryError):
            engine.order_by(toy_table, ["city"], [True, False])
